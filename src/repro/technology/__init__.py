"""Technology substrate: process nodes, device models, and wire models.

This package replaces the paper's Hspice + Predictive Technology Model (PTM)
stack with first-order analytic device models calibrated to the anchor
numbers the paper reports (Table 1 circuit parameters, Table 3 access times
and power, and the Figure 4 retention curve).  See ``DESIGN.md`` section 2
for the substitution rationale.
"""

from repro.technology.node import (
    TechnologyNode,
    NODE_65NM,
    NODE_45NM,
    NODE_32NM,
    ALL_NODES,
)
from repro.technology.transistor import Transistor, TransistorType
from repro.technology.wire import WireModel
from repro.technology import calibration

__all__ = [
    "TechnologyNode",
    "NODE_65NM",
    "NODE_45NM",
    "NODE_32NM",
    "ALL_NODES",
    "Transistor",
    "TransistorType",
    "WireModel",
    "calibration",
]
