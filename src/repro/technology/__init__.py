"""Technology substrate: process nodes, device models, and wire models.

This package replaces the paper's Hspice + Predictive Technology Model (PTM)
stack with first-order analytic device models calibrated to the anchor
numbers the paper reports (Table 1 circuit parameters, Table 3 access times
and power, and the Figure 4 retention curve).  See ``DESIGN.md`` section 2
for the substitution rationale.
"""

from repro.technology.node import (
    TechnologyNode,
    NODE_65NM,
    NODE_45NM,
    NODE_32NM,
    ALL_NODES,
)
from repro.technology.transistor import Transistor, TransistorType
from repro.technology.wire import WireModel
from repro.technology import calibration

# Imported last: backends builds on calibration/node above, and the
# concrete backends lazily import repro.cells/repro.array at call time.
from repro.technology.backends import (
    DEFAULT_TECHNOLOGY,
    DRAM3T1DBackend,
    DVFSPoint,
    CellEnergy,
    CellTiming,
    LatencyModel,
    RefreshCost,
    RetentionMap,
    STTRAMBackend,
    TechnologyBackend,
    VarDRAMBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.technology import backends

__all__ = [
    "TechnologyNode",
    "NODE_65NM",
    "NODE_45NM",
    "NODE_32NM",
    "ALL_NODES",
    "Transistor",
    "TransistorType",
    "WireModel",
    "calibration",
    "backends",
    "DEFAULT_TECHNOLOGY",
    "TechnologyBackend",
    "DRAM3T1DBackend",
    "STTRAMBackend",
    "VarDRAMBackend",
    "DVFSPoint",
    "CellTiming",
    "CellEnergy",
    "LatencyModel",
    "RefreshCost",
    "RetentionMap",
    "backend_names",
    "get_backend",
    "register_backend",
]
