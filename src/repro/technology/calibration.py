"""Calibration anchors fitted to the paper's reported numbers.

The paper derives its circuit-level inputs from Hspice simulations of
extracted cell designs.  We cannot rerun Hspice, so the analytic models in
this package are *pinned* to the quantities the paper reports and the
architectural study consumes:

* ideal 6T array access time per node      (Table 3: 285 / 251 / 208 ps)
* chip frequency per node                  (Table 1: 3.0 / 3.5 / 4.3 GHz)
* 6T cache leakage power per node          (Table 3: 15.8 / 36.0 / 78.2 mW)
* 3T1D cache leakage power per node        (Table 3: 3.36 / 5.68 / 24.4 mW)
* full-rate dynamic power per node         (Table 3)
* mean dynamic power per node              (Table 3)
* 3T1D nominal cell retention time         (Figure 4: ~5.8 us at 32nm)

Everything else (variation spreads, distribution shapes, scheme rankings)
is *predicted* by the models, not pinned -- those are the reproduction
results reported in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import math
from typing import Dict

from repro import units
from repro.errors import CalibrationError
from repro.technology.node import TechnologyNode

# ---------------------------------------------------------------------------
# Table 3 anchors, keyed by node name.
# ---------------------------------------------------------------------------

ACCESS_TIME_6T: Dict[str, float] = {
    "65nm": units.ps(285),
    "45nm": units.ps(251),
    "32nm": units.ps(208),
}
"""Ideal (no-variation) 6T array access time per node, seconds."""

LEAKAGE_POWER_6T: Dict[str, float] = {
    "65nm": units.mw(15.8),
    "45nm": units.mw(36.0),
    "32nm": units.mw(78.2),
}
"""Nominal leakage power of the full 64KB 6T cache, watts."""

LEAKAGE_POWER_3T1D: Dict[str, float] = {
    "65nm": units.mw(3.36),
    "45nm": units.mw(5.68),
    "32nm": units.mw(24.4),
}
"""Nominal leakage power of the full 64KB 3T1D cache, watts."""

FULL_DYNAMIC_POWER_6T: Dict[str, float] = {
    "65nm": units.mw(31.97),
    "45nm": units.mw(25.96),
    "32nm": units.mw(20.75),
}
"""Dynamic power with every cache port busy every cycle (ideal 6T), watts."""

FULL_DYNAMIC_POWER_3T1D: Dict[str, float] = {
    "65nm": units.mw(29.93),
    "45nm": units.mw(24.65),
    "32nm": units.mw(20.30),
}
"""Dynamic power with every port busy every cycle (3T1D), watts."""

MEAN_DYNAMIC_POWER_6T: Dict[str, float] = {
    "65nm": units.mw(4.30),
    "45nm": units.mw(3.41),
    "32nm": units.mw(2.78),
}
"""Average dynamic power over the 8-benchmark mix (ideal 6T), watts."""

NOMINAL_RETENTION_3T1D: Dict[str, float] = {
    "65nm": units.us(12.0),
    "45nm": units.us(8.6),
    "32nm": units.us(5.8),
}
"""No-variation 3T1D cell retention time per node, seconds.

The 32nm value is the Figure 4 anchor (~5.8 us).  The 65nm and 45nm values
are back-solved so that the median sampled chip under typical variation
lands near the Table 3 retention column (4000 / 2900 / 1900 ns)."""

# ---------------------------------------------------------------------------
# Cache geometry used for leakage calibration (matches Table 2 / section 3.2:
# 64KB, 512-bit lines, 4-way; tags sized for a 44-bit physical address).
# ---------------------------------------------------------------------------

CACHE_DATA_BITS: int = 64 * 1024 * 8
CACHE_LINES: int = CACHE_DATA_BITS // 512
TAG_BITS_PER_LINE: int = 34  # 30-bit tag + valid + dirty + 2 LRU bits
CACHE_TOTAL_CELLS: int = CACHE_DATA_BITS + CACHE_LINES * TAG_BITS_PER_LINE

STRONG_LEAK_PATHS_6T: int = 3
"""Strong leakage paths per 6T cell (one 'off' device each; paper Fig 2a)."""

READ_PORTS: int = 2
WRITE_PORTS: int = 1
TOTAL_PORTS: int = READ_PORTS + WRITE_PORTS

# Share of the array access path spent discharging the bitline vs. in the
# decoder/wordline and sense-amp/output stages.  The bitline and wordline
# shares scale with cell/driver drive current under variation; the sense-amp
# share is treated as peripheral and (for 3T1D) folds into retention time.
BITLINE_FRACTION: float = 0.45
WORDLINE_FRACTION: float = 0.32
PERIPHERY_FRACTION: float = 0.23

# Global refresh power model (section 4.1 / Figure 6b): a fixed control
# overhead plus a per-pass energy term proportional to 1 / retention time.
REFRESH_CONTROL_OVERHEAD: float = 0.13
"""Counter, token, and clocking overhead as a fraction of ideal dynamic power."""

REFRESH_LINE_ENERGY_PORT_ACCESSES: float = 0.9
"""Energy to refresh one 512-bit line, in units of one full port access
(the pipelined read+write reuses the already-open row and sense amps)."""

# ---------------------------------------------------------------------------
# Device-model constants.
# ---------------------------------------------------------------------------

_DRIVE_CONSTANTS: Dict[str, float] = {
    # k_drive in A/V^alpha for a square (W/L = 1) NMOS device; produces
    # on-currents of tens of microamps for minimum devices, consistent with
    # PTM-class devices at 1.1 V.
    "65nm": 6.0e-5,
    "45nm": 7.0e-5,
    "32nm": 8.0e-5,
}


def drive_constant_for_node(node: TechnologyNode) -> float:
    """Alpha-power-law drive constant for ``node`` (A/V^alpha)."""
    try:
        return _DRIVE_CONSTANTS[node.name]
    except KeyError:
        raise CalibrationError(
            f"no drive-constant calibration for node {node.name!r}"
        ) from None


def leakage_constant_for_node(node: TechnologyNode) -> float:
    """Subthreshold leakage constant k_leak (A per meter of width).

    Back-solved so that the nominal 64KB 6T cache hits the Table 3 leakage
    anchor for the node:

        P_leak = Vdd * N_cells * N_paths * I_off(min device)
        I_off  = k_leak * W_min * exp(-Vth / (n * vT))
    """
    from repro.technology.transistor import SUBTHRESHOLD_IDEALITY

    try:
        target_power = LEAKAGE_POWER_6T[node.name]
    except KeyError:
        raise CalibrationError(
            f"no leakage calibration for node {node.name!r}"
        ) from None
    v_t = units.thermal_voltage()
    per_device = target_power / (
        node.vdd * CACHE_TOTAL_CELLS * STRONG_LEAK_PATHS_6T
    )
    boltzmann_factor = math.exp(-node.vth / (SUBTHRESHOLD_IDEALITY * v_t))
    return per_device / (node.feature_size * boltzmann_factor)


def nominal_access_time(node: TechnologyNode) -> float:
    """Ideal 6T array access time for ``node`` in seconds (Table 3 anchor)."""
    try:
        return ACCESS_TIME_6T[node.name]
    except KeyError:
        raise CalibrationError(
            f"no access-time calibration for node {node.name!r}"
        ) from None


def nominal_retention_time(node: TechnologyNode) -> float:
    """No-variation 3T1D cell retention time for ``node`` in seconds.

    Scales with the square of supply-voltage headroom so that the Figure 12
    low-voltage design points (e.g. 0.9 V at 32nm) see shorter retention:
    a lower supply both shrinks the stored charge and the voltage margin.
    """
    base = ALL_NODE_RETENTION.get(node.name)
    if base is None:
        raise CalibrationError(
            f"no retention calibration for node {node.name!r}"
        )
    reference = TechnologyNode.from_name(node.name)
    headroom = (node.vdd - node.vth) / (reference.vdd - reference.vth)
    if headroom <= 0:
        raise CalibrationError(
            f"supply voltage {node.vdd} leaves no headroom above vth {node.vth}"
        )
    return base * headroom ** 2


ALL_NODE_RETENTION = NOMINAL_RETENTION_3T1D


def port_access_energy(node: TechnologyNode, cell: str = "6T") -> float:
    """Energy of one full-width port access (512-bit line read or write), joules.

    Back-solved from the Table 3 "Full Dyn. Pwr" anchors: full dynamic power
    corresponds to all ``TOTAL_PORTS`` ports performing an access every cycle
    at the nominal chip frequency.
    """
    anchors = FULL_DYNAMIC_POWER_6T if cell == "6T" else FULL_DYNAMIC_POWER_3T1D
    try:
        full_power = anchors[node.name]
    except KeyError:
        raise CalibrationError(
            f"no dynamic-power calibration for node {node.name!r}"
        ) from None
    reference = TechnologyNode.from_name(node.name)
    energy = full_power / (TOTAL_PORTS * reference.frequency)
    # Dynamic energy scales as Vdd^2 for supply-voltage what-if studies.
    return energy * (node.vdd / reference.vdd) ** 2


def refresh_line_energy(node: TechnologyNode) -> float:
    """Energy to refresh one cache line (pipelined read + write), joules."""
    return REFRESH_LINE_ENERGY_PORT_ACCESSES * port_access_energy(node, "3T1D")
