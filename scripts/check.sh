#!/usr/bin/env bash
# One entry point for every gate CI runs, so local runs match CI runs.
#
#   scripts/check.sh            # run everything available
#   scripts/check.sh tests      # tier-1 pytest suite only
#   scripts/check.sh analysis   # python -m repro.analysis
#   scripts/check.sh lint       # ruff
#   scripts/check.sh types      # mypy (strict on repro.analysis)
#
# ruff/mypy are optional-dependency tools (pip install -e ".[lint]").
# When absent they are skipped with a notice; set CHECK_REQUIRE_LINT=1
# (CI does) to turn a missing tool into a failure.

set -u
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

failures=0

run_gate() {
    local name="$1"; shift
    echo "==> ${name}: $*"
    if "$@"; then
        echo "==> ${name}: ok"
    else
        echo "==> ${name}: FAILED"
        failures=$((failures + 1))
    fi
}

run_optional_tool() {
    local name="$1" module="$2"; shift 2
    if python -c "import ${module}" >/dev/null 2>&1; then
        run_gate "${name}" python -m "${module}" "$@"
    elif [ "${CHECK_REQUIRE_LINT:-0}" = "1" ]; then
        echo "==> ${name}: ${module} not installed (required by CHECK_REQUIRE_LINT=1)"
        failures=$((failures + 1))
    else
        echo "==> ${name}: ${module} not installed, skipping (pip install -e \".[lint]\")"
    fi
}

selected=("$@")
runs() {
    local gate="$1"
    if [ "${#selected[@]}" -eq 0 ]; then
        return 0
    fi
    for s in "${selected[@]}"; do
        [ "$s" = "$gate" ] && return 0
    done
    return 1
}

if runs tests; then
    run_gate "tests" python -m pytest -x -q
fi

if runs analysis; then
    run_gate "analysis" python -m repro.analysis src/repro \
        --baseline analysis-baseline.json --strict-baseline \
        --strict-suppressions
fi

if runs lint; then
    run_optional_tool "lint" ruff check src tests
fi

if runs types; then
    run_optional_tool "types" mypy --config-file pyproject.toml
fi

if [ "$failures" -ne 0 ]; then
    echo "check.sh: ${failures} gate(s) failed"
    exit 1
fi
echo "check.sh: all selected gates passed"
