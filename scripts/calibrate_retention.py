"""Parameter scan for the 3T1D retention-model calibration.

Searches (READ_OVERDRIVE_REQUIRED, DIODE_BOOST_SIGMA_FACTOR,
MARGIN_ROLLOFF_V_PER_M, STORAGE_SUBTHRESHOLD_SHARE) against the paper's
anchor statistics and prints configurations ranked by distance to the
target vector:

  T1 typical chip-retention median ~ 1900 ns         (Table 3 / Fig 6b)
  T2 typical dead lines ~ none                        (section 4.2)
  T3 severe median chip dead-line fraction ~ 3%       (Fig 8)
  T4 severe bad-chip (p90) dead-line fraction ~ 23%   (Fig 8)
  T5 severe global-scheme discard rate ~ 80%          (section 4.3)
  T6 typical chip-retention spread ~ [476, 3094] ns   (Fig 6b)
"""

import itertools
import sys

import numpy as np

import repro.cells.dram3t1d as d3
from repro.technology import NODE_32NM
from repro.variation import VariationParams
from repro.array import ChipSampler

N_TYP = 24
N_SEV = 40


def evaluate(k_read, k_eps, rolloff_per_rel_l, area_scale):
    # The cell derives its per-node overdrive from MARGIN_VTH_RATIO; to
    # scan the 32nm margin directly, move the ratio so the reference
    # design lands at k_read.
    d3.MARGIN_VTH_RATIO = (0.6 - (0.30 + k_read) / d3.BOOST_RATIO) / 0.30
    d3.DIODE_BOOST_SIGMA_FACTOR = k_eps
    d3.MARGIN_ROLLOFF_PER_REL_L = rolloff_per_rel_l
    d3.DEVICE_AREA_SIGMA_SCALE = area_scale

    s = ChipSampler(NODE_32NM, VariationParams.typical(), seed=11)
    typ = s.sample_3t1d_chips(N_TYP)
    ret = np.array([c.chip_retention_time for c in typ]) * 1e9
    typ_median = float(np.median(ret))
    typ_min, typ_max = float(ret.min()), float(ret.max())
    pass_typ = 2048 / NODE_32NM.frequency
    typ_any_dead = float(
        np.mean([c.chip_retention_time < pass_typ for c in typ])
    )

    s2 = ChipSampler(NODE_32NM, VariationParams.severe(), seed=12)
    sev = s2.sample_3t1d_chips(N_SEV)
    # Final metric definitions (see EXPERIMENTS.md): a line is dead when
    # below one counter step (~500 ns for severe chips); a chip is
    # discarded when its worst line cannot cover one refresh pass.
    dead = np.array([c.dead_line_fraction(500e-9) for c in sev])
    sev_median = float(np.median(dead))
    sev_p90 = float(np.percentile(dead, 90))
    pass_seconds = 2048 / NODE_32NM.frequency
    discard = float(
        np.mean([c.chip_retention_time < pass_seconds for c in sev])
    )

    # distance in normalized units
    terms = [
        (typ_median - 1900) / 600,
        typ_any_dead / 0.15,
        (sev_median - 0.03) / 0.02,
        (sev_p90 - 0.23) / 0.10,
        (discard - 0.80) / 0.15,
        (typ_min - 476) / 400,
    ]
    score = float(np.sum(np.square(terms)))
    return score, dict(
        typ_median=typ_median, typ_min=typ_min, typ_max=typ_max,
        typ_any_dead=typ_any_dead, sev_median=sev_median, sev_p90=sev_p90,
        discard=discard,
    )


def main():
    grid = itertools.product(
        [0.34, 0.385, 0.42],           # k_read (32nm reference overdrive)
        [0.2, 0.3, 0.4],               # k_eps (diode sigma factor)
        [0.3, 0.384, 0.45],            # roll-off, V per relative delta-L
        [0.7, 0.78, 0.85],             # device-area sigma scale
    )
    results = []
    for combo in grid:
        score, stats = evaluate(*combo)
        results.append((score, combo, stats))
        print(
            f"k={combo[0]:.2f} eps={combo[1]:.2f} roll={combo[2]:.2f} "
            f"A={combo[3]:.2f} -> score {score:8.2f} "
            f"typmed={stats['typ_median']:6.0f} typmin={stats['typ_min']:6.0f} "
            f"typdead={stats['typ_any_dead']:.2f} "
            f"sevmed={stats['sev_median']:.3f} sevp90={stats['sev_p90']:.3f} "
            f"disc={stats['discard']:.2f}",
            flush=True,
        )
    results.sort(key=lambda r: r[0])
    print("\nTOP 5:")
    for score, combo, stats in results[:5]:
        print(score, combo, stats)


if __name__ == "__main__":
    main()
