#!/usr/bin/env python
"""Post-fabrication test flow: BIST, counters, and the 6T alternative.

Walks the paper's section 4.3.1 bring-up path for one severe-variation
wafer: run the retention built-in self test on each chip, load the line
counters with the (conservative) measured values, and confirm the
architecture evaluated on BIST-programmed counters matches the one
evaluated on oracle retention.  Then asks the section 2.1 counterfactual:
could spares/ECC have saved a 6T cache at this corner instead?

Run with::

    python examples/fab_test_flow.py
"""


from repro import (
    Cache3T1DArchitecture,
    ChipSampler,
    Evaluator,
    NODE_32NM,
    SCHEME_PARTIAL_DSP,
    VariationParams,
)
from repro.array import RetentionBIST
from repro.cells import SRAM6TCell
from repro.core import redundancy


def main() -> None:
    sampler = ChipSampler(NODE_32NM, VariationParams.severe(), seed=31)
    chips = sampler.sample_3t1d_chips(8)
    bist = RetentionBIST()
    evaluator = Evaluator(NODE_32NM, n_references=6000, seed=4)

    print("BIST bring-up on 8 severe-variation chips:")
    print(f"{'chip':>4s} {'step(cyc)':>9s} {'dead(BIST)':>10s} "
          f"{'dead(oracle)':>12s} {'test time':>10s} {'perf':>6s}")
    for chip in chips:
        result = bist.test_chip(chip)
        # Program the architecture with the BIST-measured counters.
        architecture = Cache3T1DArchitecture(
            chip, SCHEME_PARTIAL_DSP, counter=result.counter
        )
        perf = evaluator.evaluate(
            architecture, benchmarks=["gcc", "mesa"]
        ).normalized_performance
        oracle_dead = chip.dead_line_fraction(
            result.counter.step_cycles / NODE_32NM.frequency
        )
        test_us = result.test_cycles / NODE_32NM.frequency * 1e6
        print(
            f"{chip.chip_id:4d} {result.counter.step_cycles:9d} "
            f"{result.dead_line_fraction:10.1%} {oracle_dead:12.1%} "
            f"{test_us:8.1f}us {perf:6.3f}"
        )
    print(
        "\nBIST measurements are conservative (guard-banded, floored to the"
        "\nprobe step), so BIST dead fractions sit at or above the oracle's;"
        "\nthe retention-aware scheme absorbs the difference."
    )

    # The section 2.1 counterfactual: patch 6T instead?
    sigma = VariationParams.severe().sigma_vth(NODE_32NM)
    flip_rate = SRAM6TCell(NODE_32NM).flip_probability(sigma)
    report = redundancy.protection_report(flip_rate)
    ceiling = redundancy.max_tolerable_flip_rate(use_ecc=True)
    print(f"\n6T at the same corner: {report}")
    print(f"largest flip rate SECDED + 16 spares could absorb: {ceiling:.3%}")
    print(
        "Even word-level SECDED plus spare lines cannot reach the corner's"
        f" {flip_rate:.1%} flip rate\n-- the paper's case for switching the"
        " cell, not patching it."
    )


if __name__ == "__main__":
    main()
