#!/usr/bin/env python
"""Drive the cycle-level out-of-order core over a 3T1D cache.

The Monte-Carlo studies use the fast analytic CPU model; this example
shows the full substrate instead: a synthetic SPEC2000-like instruction
stream scheduled through the Table 2 machine (4-wide OoO, 80-entry ROB,
tournament predictor) with its loads and stores going through the
retention-aware cache simulator.

Run with::

    python examples/pipeline_simulation.py [benchmark] [n_instructions]
"""

import sys

from repro import (
    ChipSampler,
    NODE_32NM,
    SCHEME_NO_REFRESH_LRU,
    SCHEME_RSP_FIFO,
    VariationParams,
    get_profile,
)
from repro.cache.config import CacheConfig
from repro.cache.controller import RetentionAwareCache
from repro.core import Cache3T1DArchitecture
from repro.cpu import CacheMemory, Core
from repro.workloads import SyntheticWorkload


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    n_instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 40_000

    profile = get_profile(bench)
    config = CacheConfig(l2_miss_rate=profile.l2_miss_rate)
    workload = SyntheticWorkload(profile, seed=21)
    memory_trace = workload.memory_trace(
        int(n_instructions * profile.mem_refs_per_instr)
    )
    trace = workload.instruction_trace(n_instructions, memory=memory_trace)
    print(f"benchmark {bench}: {n_instructions} instructions, "
          f"{int(trace.memory_fraction * 100)}% memory ops, "
          f"{int(trace.branch_fraction * 100)}% branches")

    chip = ChipSampler(
        NODE_32NM, VariationParams.severe(), seed=81
    ).sample_3t1d_chip()
    print(f"severe-variation chip: worst line "
          f"{chip.chip_retention_time * 1e9:.0f} ns, "
          f"dead lines {chip.dead_line_fraction(500e-9):.1%}")

    configs = [
        ("ideal 6T cache", RetentionAwareCache(config)),
        (
            "3T1D no-refresh/LRU",
            Cache3T1DArchitecture(
                chip, SCHEME_NO_REFRESH_LRU, config=config
            ).build_cache(),
        ),
        (
            "3T1D RSP-FIFO",
            Cache3T1DArchitecture(
                chip, SCHEME_RSP_FIFO, config=config
            ).build_cache(),
        ),
    ]

    print(f"\n{'configuration':22s} {'IPC':>6s} {'vs ideal':>9s} "
          f"{'L1 miss%':>9s} {'expired':>8s} {'mispred%':>9s}")
    baseline_ipc = None
    for label, cache in configs:
        result = Core().run(trace, CacheMemory(cache, config))
        stats = cache.stats
        if baseline_ipc is None:
            baseline_ipc = result.ipc
        print(
            f"{label:22s} {result.ipc:6.2f} {result.ipc / baseline_ipc:9.3f} "
            f"{stats.miss_rate:9.1%} {stats.misses_expired:8d} "
            f"{result.branch_misprediction_rate:9.1%}"
        )
    print(
        "\nThe cycle-level core confirms what the analytic sweeps report:"
        "\nexpired-line misses drag the plain-LRU 3T1D cache below the"
        "\nretention-sensitive RSP-FIFO configuration."
    )


if __name__ == "__main__":
    main()
