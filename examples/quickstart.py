#!/usr/bin/env python
"""Quickstart: sample a 3T1D cache chip and evaluate retention schemes.

Walks through the library's core flow in five steps:

1. pick a technology node and a process-variation scenario,
2. Monte-Carlo sample a fabricated chip (per-line retention times),
3. wrap it in a cache architecture with a retention scheme,
4. run the benchmark suite against it,
5. compare schemes and against the 6T baseline.

Run with::

    python examples/quickstart.py
"""

from repro import (
    Cache3T1DArchitecture,
    Cache6TArchitecture,
    ChipSampler,
    Evaluator,
    NODE_32NM,
    SCHEME_GLOBAL,
    SCHEME_NO_REFRESH_LRU,
    SCHEME_PARTIAL_DSP,
    SCHEME_RSP_FIFO,
    VariationParams,
)


def main() -> None:
    # 1. A 32nm process suffering the paper's "severe" variation.
    node = NODE_32NM
    variation = VariationParams.severe()
    print(f"node: {node.name} @ {node.frequency / 1e9:.1f} GHz, "
          f"variation: {variation.name}")

    # 2. Fabricate one 3T1D-cache chip and one 6T-cache chip.
    sampler = ChipSampler(node, variation, seed=42)
    chip = sampler.sample_3t1d_chip()
    sram_chip = sampler.sample_sram_chip()
    print(f"\n3T1D chip #{chip.chip_id}:")
    print(f"  worst-line retention: {chip.chip_retention_time * 1e9:7.1f} ns")
    print(f"  mean line retention:  {chip.mean_line_retention * 1e9:7.1f} ns")
    print(f"  dead lines (<500ns):  {chip.dead_line_fraction(500e-9):7.1%}")
    print(f"6T chip: frequency {sram_chip.normalized_frequency:.1%} of ideal, "
          f"leakage {sram_chip.normalized_leakage:.1f}x golden")

    # 3-5. Evaluate retention schemes on the benchmark suite.
    evaluator = Evaluator(node, n_references=8000, seed=1)
    print(f"\n{'scheme':24s} {'perf vs ideal':>13s} {'dyn power':>10s}")
    for scheme in (
        SCHEME_GLOBAL,
        SCHEME_NO_REFRESH_LRU,
        SCHEME_PARTIAL_DSP,
        SCHEME_RSP_FIFO,
    ):
        architecture = Cache3T1DArchitecture(chip, scheme)
        if not architecture.is_operable():
            print(f"{scheme.name:24s} {'-- chip discarded --':>13s}")
            continue
        result = evaluator.evaluate(architecture)
        print(
            f"{scheme.name:24s} {result.normalized_performance:13.3f} "
            f"{result.dynamic_power_normalized:9.2f}x"
        )

    baseline = evaluator.evaluate(Cache6TArchitecture(sram_chip))
    print(
        f"{'1X 6T (same corner)':24s} {baseline.normalized_performance:13.3f} "
        f"{baseline.dynamic_power_normalized:9.2f}x"
    )
    print(
        "\nThe 3T1D cache with a retention-aware scheme keeps the chip near"
        "\nideal performance where the 6T design loses frequency outright."
    )


if __name__ == "__main__":
    main()
