#!/usr/bin/env python
"""Roadmap scenario: how retention scales with technology and voltage.

Reproduces the paper's section 5 narrative: each technology node and
supply voltage lands the design at a different (mean retention,
retention spread) point, and the scheme choice decides how gracefully
performance degrades as the point slides toward the bad corner.

Run with::

    python examples/voltage_technology_scaling.py
"""

import numpy as np

from repro import (
    Cache3T1DArchitecture,
    ChipSampler,
    Evaluator,
    NODE_32NM,
    NODE_45NM,
    NODE_65NM,
    SCHEME_PARTIAL_DSP,
    VariationParams,
)
from repro.cells import AccessTimeCurve, RetentionModel

CASES = (
    ("65nm, 1.1V, typical", NODE_65NM, 1.1, "typical"),
    ("45nm, 1.1V, typical", NODE_45NM, 1.1, "typical"),
    ("32nm, 1.1V, typical", NODE_32NM, 1.1, "typical"),
    ("32nm, 1.1V, severe ", NODE_32NM, 1.1, "severe"),
    ("32nm, 1.0V, typical", NODE_32NM, 1.0, "typical"),
    ("32nm, 1.0V, severe ", NODE_32NM, 1.0, "severe"),
)


def main() -> None:
    print("Design point sweep (paper Figure 12's labelled points):\n")
    print(f"{'design point':22s} {'cell ret':>9s} {'mu':>8s} {'s/mu':>6s} "
          f"{'dead':>6s} {'perf(DSP)':>10s}")
    for label, base_node, vdd, scenario in CASES:
        node = base_node if vdd == base_node.vdd else base_node.scaled(vdd=vdd)
        params = (
            VariationParams.typical()
            if scenario == "typical"
            else VariationParams.severe()
        )
        nominal_us = RetentionModel.for_node(node).nominal_retention_time() * 1e6

        sampler = ChipSampler(node, params, seed=13)
        chips = sampler.sample_3t1d_chips(10)
        cycles = np.concatenate(
            [c.retention_by_line * node.frequency for c in chips]
        )
        mu = float(np.mean(cycles))
        ratio = float(np.std(cycles)) / mu if mu > 0 else float("nan")
        dead = float(np.mean(cycles < 2000))

        # Evaluate the median chip under the robust partial-refresh/DSP
        # scheme on a representative benchmark pair.
        median_chip = sorted(chips, key=lambda c: c.mean_line_retention)[5]
        evaluator = Evaluator(node, n_references=6000, seed=3)
        result = evaluator.evaluate(
            Cache3T1DArchitecture(median_chip, SCHEME_PARTIAL_DSP),
            benchmarks=["gcc", "mesa"],
        )
        print(
            f"{label:22s} {nominal_us:7.1f}us {mu:8.0f} {ratio:6.1%} "
            f"{dead:6.1%} {result.normalized_performance:10.3f}"
        )

    # The Figure 4 intuition for why voltage scaling hurts: the access
    # curve starts closer to the 6T line at lower supply.
    print("\nAccess-time curve headroom at 32nm:")
    for vdd in (1.1, 1.0, 0.9):
        node = NODE_32NM if vdd == 1.1 else NODE_32NM.scaled(vdd=vdd)
        curve = AccessTimeCurve(model=RetentionModel.for_node(node))
        print(
            f"  Vdd={vdd:.1f}V: fresh access {curve.access_time(0.0) * 1e12:5.1f} ps, "
            f"retention {curve.retention_time * 1e6:5.2f} us"
        )
    print(
        "\nTakeaway: scaling technology or supply voltage shrinks retention"
        "\n(mu) while variation grows (sigma/mu); the line-level schemes are"
        "\nwhat keeps the design point's performance on the flat part of the"
        "\nFigure 12 surface."
    )


if __name__ == "__main__":
    main()
