#!/usr/bin/env python
"""Fab-triage scenario: what fraction of manufactured chips survive?

A yield engineer's question: given a wafer's variation corner, how many
chips can ship (a) as conventional 6T-cache parts, (b) as 3T1D parts with
the simple global refresh scheme, and (c) as 3T1D parts with line-level
retention schemes?  The paper's answer -- line-level schemes ship every
chip -- is the reproduction's headline yield story.

Run with::

    python examples/chip_yield_analysis.py [n_chips]
"""

import sys

import numpy as np

from repro import (
    Cache3T1DArchitecture,
    ChipSampler,
    NODE_32NM,
    SCHEME_GLOBAL,
    VariationParams,
    YieldModel,
)

FREQUENCY_BIN_FLOOR = 0.85
"""A 6T chip binned below this normalized frequency misses spec."""

STABILITY_LIMIT = 0.0
"""6T chips with any read-unstable bit need ECC/redundancy beyond what a
data cache can afford (paper section 2.1)."""


def analyze(scenario_name: str, n_chips: int) -> None:
    params = (
        VariationParams.typical()
        if scenario_name == "typical"
        else VariationParams.severe()
    )
    sampler = ChipSampler(NODE_32NM, params, seed=7)
    chips_3t1d = sampler.sample_3t1d_chips(n_chips)
    sram_sampler = ChipSampler(NODE_32NM, params, seed=7)
    chips_6t = sram_sampler.sample_sram_chips(n_chips)

    print(f"\n=== {scenario_name} variation, {n_chips} chips ===")

    # (a) conventional 6T parts: speed binning + stability screen.
    fast_enough = np.array(
        [c.normalized_frequency >= FREQUENCY_BIN_FLOOR for c in chips_6t]
    )
    stable = np.array(
        [c.flip_count <= STABILITY_LIMIT for c in chips_6t]
    )
    print(
        f"6T parts:   {np.mean(fast_enough):6.1%} meet the "
        f"{FREQUENCY_BIN_FLOOR:.0%}-frequency bin, "
        f"{np.mean(stable):.1%} have zero unstable bits, "
        f"{np.mean(fast_enough & stable):.1%} ship"
    )

    # (b) 3T1D parts with the global refresh scheme.
    operable = [
        Cache3T1DArchitecture(chip, SCHEME_GLOBAL).is_operable()
        for chip in chips_3t1d
    ]
    print(f"3T1D/global: {np.mean(operable):6.1%} ship "
          "(worst line must survive one refresh pass)")

    # (c) 3T1D parts with line-level schemes: dead lines only cost
    # capacity, so every chip ships.
    model = YieldModel(chips_3t1d)
    report = model.report()
    print(f"3T1D/line-level: 100.0% ship; dead lines per chip: "
          f"median {report.median_dead_line_fraction:.1%}, "
          f"p90 {report.p90_dead_line_fraction:.1%}, "
          f"max {report.max_dead_line_fraction:.1%}")

    # Bonus: the leakage story that motivates shipping 3T1D parts at all.
    leak_6t = np.median([c.normalized_leakage for c in chips_6t])
    leak_3t1d = np.median([c.normalized_leakage for c in chips_3t1d])
    print(f"median cache leakage vs golden 6T: "
          f"6T {leak_6t:.2f}x, 3T1D {leak_3t1d:.2f}x")


def main() -> None:
    n_chips = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    for scenario in ("typical", "severe"):
        analyze(scenario, n_chips)
    print(
        "\nTakeaway: the paper's yield argument reproduces -- under severe"
        "\nvariation most chips fail 6T speed/stability screens or the"
        "\nglobal-refresh retention screen, while line-level retention"
        "\nschemes keep every chip shippable."
    )


if __name__ == "__main__":
    main()
