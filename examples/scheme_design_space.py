#!/usr/bin/env python
"""Architect's scenario: pick a retention scheme for a product.

Sweeps the full refresh x placement design space (the paper's 8
line-level schemes plus global refresh) over good/median/bad process
corners and over cache associativity, then prints a recommendation table
balancing performance, power, and hardware complexity.

Run with::

    python examples/scheme_design_space.py
"""

from repro import (
    Cache3T1DArchitecture,
    ChipSampler,
    Evaluator,
    LINE_LEVEL_SCHEMES,
    NODE_32NM,
    SCHEME_GLOBAL,
    VariationParams,
    YieldModel,
)
from repro.cache.config import CacheConfig

# Qualitative hardware cost, from the paper's overhead discussion:
# counters ~10%, RSP muxes +7%, token logic a few gates.
HARDWARE_COST = {
    "global": "global counter only",
    "no-refresh/LRU": "line counters",
    "partial-refresh/LRU": "line counters + token",
    "full-refresh/LRU": "line counters + token",
    "no-refresh/DSP": "line counters + dead map",
    "partial-refresh/DSP": "line counters + dead map + token",
    "full-refresh/DSP": "line counters + dead map + token",
    "RSP-FIFO": "line counters + way muxes (+7% area)",
    "RSP-LRU": "line counters + way muxes (+7% area)",
}


def main() -> None:
    sampler = ChipSampler(NODE_32NM, VariationParams.severe(), seed=11)
    chips = sampler.sample_3t1d_chips(24)
    good, median, bad = YieldModel(chips).pick_good_median_bad()
    evaluator = Evaluator(NODE_32NM, n_references=8000, seed=2)

    print("Scheme design space on good/median/bad severe-variation chips")
    print(f"{'scheme':22s} {'good':>6s} {'median':>7s} {'bad':>6s} "
          f"{'pwr(bad)':>9s}  hardware")
    candidates = (SCHEME_GLOBAL,) + LINE_LEVEL_SCHEMES
    scores = {}
    for scheme in candidates:
        row = []
        power_bad = None
        for chip in (good, median, bad):
            architecture = Cache3T1DArchitecture(chip, scheme)
            if not architecture.is_operable():
                row.append(None)
                continue
            result = evaluator.evaluate(architecture)
            row.append(result.normalized_performance)
            power_bad = result.dynamic_power_normalized
        cells = [f"{v:6.3f}" if v is not None else "  -- " for v in row]
        power_text = f"{power_bad:8.2f}x" if row[-1] is not None else "      --"
        print(f"{scheme.name:22s} {cells[0]} {cells[1]:>7s} {cells[2]} "
              f"{power_text}  {HARDWARE_COST[scheme.name]}")
        if all(v is not None for v in row):
            scores[scheme.name] = min(row)

    # Associativity check for the leading schemes (Figure 11's lesson:
    # retention-sensitive placement needs ways to act on).
    print("\nBad chip vs associativity (normalized performance):")
    print(f"{'scheme':22s} " + " ".join(f"{w}-way".rjust(7) for w in (1, 2, 4, 8)))
    for name in ("no-refresh/LRU", "partial-refresh/DSP", "RSP-FIFO"):
        scheme = next(s for s in LINE_LEVEL_SCHEMES if s.name == name)
        cells = []
        for ways in (1, 2, 4, 8):
            config = CacheConfig().with_ways(ways)
            way_eval = Evaluator(
                NODE_32NM, config=config, n_references=8000, seed=2
            )
            result = way_eval.evaluate(
                Cache3T1DArchitecture(bad, scheme, config=config),
                benchmarks=["gcc", "mcf", "mesa"],
            )
            cells.append(f"{result.normalized_performance:7.3f}")
        print(f"{name:22s} " + " ".join(cells))

    best = max(scores, key=scores.get)
    print(
        f"\nRecommendation: '{best}' has the best worst-corner performance"
        f" ({scores[best]:.3f});\npick partial-refresh/DSP when mux area is"
        " unacceptable, and the global scheme\nonly when the fab's corner is"
        " known to be typical (it discards bad chips)."
    )


if __name__ == "__main__":
    main()
