"""Regenerate Figure 10: per-chip performance & power, three schemes."""

import numpy as np

from repro.experiments import fig10_hundred_chips
from benchmarks.conftest import run_once


def test_fig10_hundred_chips(benchmark, context):
    result = run_once(benchmark, fig10_hundred_chips.run, context)
    print("\n" + fig10_hundred_chips.report(result))

    perf = result.performance
    power = result.power

    # Every chip functions under every line-level scheme (vs ~80%
    # discarded under the global scheme); the retention-aware schemes
    # keep even the worst chips close to ideal.
    for series in perf.values():
        assert np.all(series > 0.1)
    # The retention-aware schemes hold essentially every chip near ideal;
    # our severe tail is heavier than the paper's, so allow the worst
    # 1-2 chips of a batch to dip (see EXPERIMENTS.md deviations).
    assert np.mean(perf["RSP-FIFO"] > 0.8) >= 0.97
    assert np.mean(perf["partial-refresh/DSP"] > 0.8) >= 0.97

    # Paper: RSP-FIFO and partial/DSP hold within a few percent for most
    # chips; no-refresh/LRU degrades the furthest.
    assert np.median(perf["RSP-FIFO"]) > 0.94
    assert np.median(perf["partial-refresh/DSP"]) > 0.92
    assert result.worst_performance("RSP-FIFO") > result.worst_performance(
        "no-refresh/LRU"
    )
    assert result.worst_performance(
        "partial-refresh/DSP"
    ) > result.worst_performance("no-refresh/LRU")

    # Paper: no-refresh/LRU's power overhead balloons on bad chips (extra
    # L2 traffic), beyond the retention-aware schemes'.
    assert result.worst_power("no-refresh/LRU") > result.worst_power(
        "partial-refresh/DSP"
    ) - 0.05
    for scheme in power:
        assert np.median(power[scheme]) < 1.6
