"""Regenerate Figure 7: leakage power distributions."""

import numpy as np

from repro.experiments import fig07_leakage
from benchmarks.conftest import run_once


def test_fig07_leakage(benchmark, context):
    result = run_once(benchmark, fig07_leakage.run, context)
    print("\n" + fig07_leakage.report(result))

    # Paper: >50% of 1X 6T chips leak above 1.5X the golden design.
    assert result.fraction_6t_above_1_5x > 0.35

    # Paper: the 6T tail reaches many-X; the 3T1D spread stays compressed.
    assert np.max(result.samples_6t) > 4.0
    assert result.max_3t1d < 4.0

    # Paper: only ~11% of 3T1D chips leak above the golden 6T design.
    assert result.fraction_3t1d_above_golden < 0.35

    # The 3T1D distribution sits well below the 6T distribution.
    assert np.median(result.samples_3t1d) < 0.7 * np.median(result.samples_6t)
