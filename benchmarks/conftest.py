"""Shared configuration for the figure/table regeneration benches.

Each bench regenerates one paper table or figure end-to-end (Monte-Carlo
chip sampling + cache/CPU simulation) and asserts the *shape* of the
result against the paper.  pytest-benchmark measures the wall-clock of
one full regeneration (``pedantic`` with a single round -- these are
experiments, not microbenchmarks).

Scale knobs (environment variables):

* ``REPRO_BENCH_CHIPS``  -- Monte-Carlo chips per scenario (default 30;
  the paper uses 100).
* ``REPRO_BENCH_REFS``   -- trace references per benchmark (default 6000).

Run with::

    pytest benchmarks/ --benchmark-only
    REPRO_BENCH_CHIPS=100 pytest benchmarks/ --benchmark-only   # paper scale
"""

import os

import pytest

from repro.experiments.runner import ExperimentContext

BENCH_CHIPS = int(os.environ.get("REPRO_BENCH_CHIPS", "30"))
BENCH_REFS = int(os.environ.get("REPRO_BENCH_REFS", "6000"))


@pytest.fixture(scope="session")
def context():
    """One shared experiment context so chip batches and traces are
    sampled once per bench session."""
    return ExperimentContext(
        n_chips=BENCH_CHIPS, n_references=BENCH_REFS, seed=2007
    )


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under the benchmark timer."""
    return benchmark.pedantic(
        function, args=args, kwargs=kwargs, rounds=1, iterations=1,
        warmup_rounds=0,
    )
