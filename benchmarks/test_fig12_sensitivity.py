"""Regenerate Figure 12: mu-sigma/mu performance surfaces."""

import numpy as np

from repro.experiments import fig12_sensitivity
from benchmarks.conftest import run_once


def test_fig12_sensitivity(benchmark, context):
    result = run_once(benchmark, fig12_sensitivity.run, context)
    print("\n" + fig12_sensitivity.report(result))

    no_refresh = result.surfaces["no-refresh/LRU"]
    dsp = result.surfaces["partial-refresh/DSP"]
    rsp = result.surfaces["RSP-FIFO"]

    # Paper: sigma/mu matters more than mu -- the worst corner is high
    # sigma at low mu, and performance collapses there for no-refresh.
    assert no_refresh[0, -1] == no_refresh.min()
    assert no_refresh[0, -1] < 0.9

    # Paper: larger mu helps at fixed sigma/mu.
    assert np.all(no_refresh[-1, :] >= no_refresh[0, :] - 0.01)

    # Paper: the dead-line- and retention-sensitive schemes dominate
    # no-refresh almost everywhere (allow noise at easy corners).
    assert np.mean(dsp >= no_refresh - 0.005) > 0.8
    assert np.mean(rsp >= no_refresh - 0.005) > 0.8

    # Paper: the dead-line-sensitive scheme is the most robust surface.
    assert dsp.min() > 0.85

    # Design points: severity and voltage scaling move points toward the
    # bad corner (larger sigma/mu, smaller mu).
    points = {p.label.split(":")[0]: p for p in result.design_points}
    assert points["4"].sigma_ratio > points["3"].sigma_ratio
    assert points["5"].mu_cycles < points["3"].mu_cycles
    assert points["6"].sigma_ratio >= points["4"].sigma_ratio - 0.02
