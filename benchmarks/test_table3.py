"""Regenerate Table 3: per-node cache design summary."""

import pytest

from repro.experiments import table3
from benchmarks.conftest import BENCH_CHIPS, run_once
from repro.experiments.runner import ExperimentContext


def test_table3(benchmark):
    context = ExperimentContext(
        n_chips=max(10, BENCH_CHIPS // 2), n_references=4000, seed=2007
    )
    result = run_once(benchmark, table3.run, context)
    print("\n" + table3.report(result))

    for node, ideal_access, sram_access, retention in (
        ("65nm", 285, 370, 4000),
        ("45nm", 251, 315, 2900),
        ("32nm", 208, 251, 1900),
    ):
        ideal = result.row(node, "ideal 6T")
        sram = result.row(node, "1X 6T median")
        dram = result.row(node, "3T1D median")

        # Anchored exactly.
        assert ideal.access_time_ps == pytest.approx(ideal_access)

        # Paper shape: the 1X 6T median chip loses roughly a technology
        # generation of access time.
        assert sram.access_time_ps == pytest.approx(sram_access, rel=0.12)

        # 3T1D holds BIPS near ideal while 6T loses 15-20%.
        assert dram.bips > 0.97 * ideal.bips
        assert sram.bips < 0.92 * ideal.bips

        # Median-chip retention lands within ~2x of the paper's column
        # (distribution tails differ; scaling direction must hold).
        assert dram.retention_ns == pytest.approx(retention, rel=0.65)

        # Leakage: 3T1D far below the 6T design at the same node.
        assert dram.leakage_power_mw < 0.7 * sram.leakage_power_mw

        # Dynamic power: refresh makes 3T1D mean power higher than ideal.
        assert dram.mean_dynamic_power_mw > ideal.mean_dynamic_power_mw

    # Retention shrinks with technology scaling (Table 3 column shape).
    retentions = [
        result.row(node, "3T1D median").retention_ns
        for node in ("65nm", "45nm", "32nm")
    ]
    assert retentions[0] > retentions[1] > retentions[2]

    # Paper headline: ~64% cache power saving for 3T1D vs ideal 6T at the
    # 32nm node (leakage-dominated).
    ideal = result.row("32nm", "ideal 6T")
    dram = result.row("32nm", "3T1D median")
    total_ideal = ideal.mean_dynamic_power_mw + ideal.leakage_power_mw
    total_dram = dram.mean_dynamic_power_mw + dram.leakage_power_mw
    assert total_dram < 0.75 * total_ideal
