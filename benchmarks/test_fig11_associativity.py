"""Regenerate Figure 11: scheme performance vs. associativity."""

from repro.experiments import fig11_associativity
from benchmarks.conftest import run_once


def test_fig11_associativity(benchmark, context):
    result = run_once(benchmark, fig11_associativity.run, context)
    print("\n" + fig11_associativity.report(result))

    # Paper: in a direct-mapped cache the placement policies cannot act,
    # so the schemes converge; with associativity the retention-sensitive
    # schemes pull away on the bad chip.
    assert result.spread_at("bad", 1) < 0.08
    assert result.spread_at("bad", 4) > result.spread_at("bad", 1)

    # 2-way already provides enough flexibility (paper's observation).
    assert result.spread_at("bad", 2) > result.spread_at("bad", 1)

    perf = result.performance
    for ways in (2, 4, 8):
        assert (
            perf["bad"]["RSP-FIFO"][ways]
            >= perf["bad"]["no-refresh/LRU"][ways]
        )

    # The good chip barely cares (paper: differences small).
    assert result.spread_at("good", 4) < result.spread_at("bad", 4) + 0.02
