"""Regenerate Figure 8: line retention of good/median/bad chips (severe)."""

from repro.experiments import fig08_line_retention
from benchmarks.conftest import run_once


def test_fig08_line_retention(benchmark, context):
    result = run_once(benchmark, fig08_line_retention.run, context)
    print("\n" + fig08_line_retention.report(result))

    # Paper: bad chip ~23% dead lines, median ~3%, good near zero.
    assert result.dead_fractions["bad"] > 0.05
    assert result.dead_fractions["median"] < 0.10
    assert result.dead_fractions["good"] <= result.dead_fractions["median"] + 0.01
    assert (
        result.dead_fractions["good"]
        <= result.dead_fractions["bad"]
    )

    # Paper: ~80% of chips discarded under the global scheme.
    assert 0.55 <= result.discard_rate <= 0.97

    # Good chip's retention histogram sits to the right of the bad chip's.
    import numpy as np

    centers = np.arange(250.0, 5000.0, 500.0)
    mean_good = float(np.dot(centers, result.histograms["good"]))
    mean_bad = float(np.dot(centers, result.histograms["bad"]))
    assert mean_good > mean_bad
