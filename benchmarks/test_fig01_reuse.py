"""Regenerate Figure 1: reference distance from line load."""

import numpy as np

from repro.experiments import fig01_reuse
from benchmarks.conftest import run_once


def test_fig01_reuse(benchmark, context):
    result = run_once(benchmark, fig01_reuse.run, context)
    print("\n" + fig01_reuse.report(result))

    # Paper: ~90% of references within 6K cycles on average.
    at_6k = result.average_measured[list(result.grid).index(6000)]
    assert 0.85 < at_6k < 0.97

    # Per-benchmark curves are CDFs and streaming codes lead.
    for name, cdf in result.measured.items():
        assert np.all(np.diff(cdf) >= 0)
    at6 = result.measured_at_6k()
    assert at6["applu"] > at6["mcf"]
    assert at6["mesa"] > at6["twolf"]
