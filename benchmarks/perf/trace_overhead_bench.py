"""Measure the wall-clock cost of tracing on the Figure 10 workload.

Two stages, mirroring the guarantees the trace layer makes:

1. **Bit-identity check** -- the fig10 experiment runs traced and
   untraced; the report text and CSV exports must match byte for byte
   (tracing is strictly observational).  Any mismatch fails the run
   (exit 1).
2. **Overhead gate** -- both variants are timed over several repeats
   (after a warm-up pass that populates chip batches and trace caches);
   the minimum traced time may exceed the minimum untraced time by at
   most ``--max-overhead-pct`` (default 2%).

Results land in ``BENCH_trace_overhead.json`` (see ``--out``), the
repo's perf-trajectory record.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.trace_overhead_bench \
        --chips 8 --refs 20000 --out BENCH_trace_overhead.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, List, Optional

from repro.engine import trace as trace_mod
from repro.engine.registry import get_experiment
from repro.experiments.runner import ExperimentContext

EXPERIMENT = "fig10_hundred_chips"


def _run_once(experiment, context, tracer) -> float:
    start = time.perf_counter()
    with trace_mod.activate(tracer):
        experiment.execute(context, None)
    return time.perf_counter() - start


def _outputs(experiment, context, tracer) -> Dict[str, object]:
    with trace_mod.activate(tracer):
        result, _ = experiment.execute(context, None)
    return {
        "report": experiment.report(result),
        "csv": {
            export.filename: (export.headers, export.rows)
            for export in experiment.csv_exports(result)
        },
    }


def check_identity(n_chips: int, n_references: int, seed: int) -> Dict:
    """Traced and untraced fig10 outputs must be byte-identical."""
    experiment = get_experiment(EXPERIMENT)
    context = ExperimentContext(
        n_chips=n_chips, n_references=n_references, seed=seed
    )
    try:
        untraced = _outputs(experiment, context, None)
        tracer = trace_mod.Tracer()
        traced = _outputs(experiment, context, tracer)
    finally:
        context.close()
    return {
        "chips": n_chips,
        "references": n_references,
        "spans_recorded": len(tracer.spans()),
        "ok": traced == untraced and len(tracer.spans()) > 0,
    }


def time_overhead(
    n_chips: int, n_references: int, seed: int, repeats: int
) -> Dict:
    """Min-of-repeats traced vs untraced wall-clock on the fig10 shape."""
    experiment = get_experiment(EXPERIMENT)
    context = ExperimentContext(
        n_chips=n_chips, n_references=n_references, seed=seed
    )
    tracer = trace_mod.Tracer()
    untraced_s: List[float] = []
    traced_s: List[float] = []
    try:
        _run_once(experiment, context, None)  # warm chips, traces, caches
        for _ in range(repeats):
            untraced_s.append(_run_once(experiment, context, None))
            traced_s.append(_run_once(experiment, context, tracer))
    finally:
        context.close()
    base, traced = min(untraced_s), min(traced_s)
    return {
        "workload": f"{EXPERIMENT}: {n_chips} chips x {n_references} refs",
        "chips": n_chips,
        "references": n_references,
        "repeats": repeats,
        "untraced_s": untraced_s,
        "traced_s": traced_s,
        "untraced_min_s": base,
        "traced_min_s": traced,
        "overhead_pct": (traced - base) / base * 100.0 if base else 0.0,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chips", type=int, default=8,
                        help="chips in the timing batch (default 8)")
    parser.add_argument("--refs", type=int, default=20000,
                        help="trace length for the timing batch")
    parser.add_argument("--identity-chips", type=int, default=2,
                        help="chips in the bit-identity check")
    parser.add_argument("--identity-refs", type=int, default=1500,
                        help="trace length for the bit-identity check")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repeats per variant (min is reported)")
    parser.add_argument("--max-overhead-pct", type=float, default=2.0,
                        help="fail when tracing costs more than this")
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument("--out", default="BENCH_trace_overhead.json")
    args = parser.parse_args(argv)

    print(
        f"identity check: {EXPERIMENT} traced vs untraced "
        f"({args.identity_chips} chips, {args.identity_refs} refs) ..."
    )
    identity = check_identity(
        args.identity_chips, args.identity_refs, args.seed
    )
    print(
        f"  outputs {'identical' if identity['ok'] else 'DIFFER'}, "
        f"{identity['spans_recorded']} spans recorded"
    )

    print(
        f"timing: {args.chips} chips x {args.refs} refs, "
        f"{args.repeats} repeats per variant ..."
    )
    timing = time_overhead(args.chips, args.refs, args.seed, args.repeats)
    print(
        f"  untraced {timing['untraced_min_s']:.3f}s  "
        f"traced {timing['traced_min_s']:.3f}s  "
        f"overhead {timing['overhead_pct']:+.2f}%"
    )

    overhead_ok = timing["overhead_pct"] < args.max_overhead_pct
    payload = {
        "benchmark": "trace_overhead",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "seed": args.seed,
        "identity": identity,
        "timing": timing,
        "max_overhead_pct": args.max_overhead_pct,
        "overhead_ok": overhead_ok,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    if not identity["ok"]:
        print("bit-identity check FAILED", file=sys.stderr)
        return 1
    if not overhead_ok:
        print(
            f"tracing overhead {timing['overhead_pct']:.2f}% exceeds "
            f"{args.max_overhead_pct}% gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
