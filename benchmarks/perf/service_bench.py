"""Measure the execution service: dedupe ratio + submit latency.

Two stages, mirroring the guarantees the service makes:

1. **Fleet-wide dedupe gate** -- two identical fig10 jobs are submitted
   concurrently against one service root.  Exactly one may compute; the
   other must resolve through the shared :class:`ShardedResultCache`
   (in-flight coalescing + content-keyed hits).  The gate fails unless
   the service's cache-hit counter went up AND both jobs' ``result.pkl``
   payloads are byte-identical (``--require-dedupe``, on by default in
   CI).
2. **Submit-to-first-event latency** -- over several repeats, the
   wall-clock from :meth:`ExecutionService.submit` returning to the
   first typed engine event landing in the job's ``events.jsonl``.
   Reported as min-of-repeats; gated by ``--max-first-event-s``.

Results land in ``BENCH_service.json`` (see ``--out``), the repo's
perf-trajectory record.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.service_bench \
        --chips 2 --refs 800 --out BENCH_service.json
"""

from __future__ import annotations

import argparse
import json
import pickle
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.service import ExecutionService

EXPERIMENT = "fig10_hundred_chips"


def check_dedupe(n_chips: int, n_references: int, seed: int) -> Dict:
    """Two concurrent identical jobs: one compute, one shared-cache hit."""
    with tempfile.TemporaryDirectory(prefix="service-bench-") as root:
        service = ExecutionService(Path(root))
        handles = [
            service.submit(
                EXPERIMENT, chips=n_chips, refs=n_references, seed=seed
            )
            for _ in range(2)
        ]
        statuses = [handle.wait() for handle in handles]
        payloads = {
            pickle.dumps(handle.result()) for handle in handles
        }
        service.close()
        cached_states = sorted(status.cached for status in statuses)
        hits = service.cache.stats.hits
        return {
            "chips": n_chips,
            "references": n_references,
            "jobs": len(handles),
            "states": [status.state for status in statuses],
            "cached_flags": cached_states,
            "cache_hits": hits,
            "computed_jobs": cached_states.count(False),
            "dedupe_ratio": cached_states.count(True) / len(handles),
            "byte_identical": len(payloads) == 1,
            "ok": (
                all(status.state == "done" for status in statuses)
                and hits > 0
                and len(payloads) == 1
                and cached_states == [False, True]
            ),
        }


def time_submit_latency(
    n_chips: int, n_references: int, seed: int, repeats: int
) -> Dict:
    """Min-of-repeats submit-to-first-event wall-clock."""
    latencies: List[float] = []
    for repeat in range(repeats):
        with tempfile.TemporaryDirectory(prefix="service-bench-") as root:
            service = ExecutionService(Path(root))
            start = time.perf_counter()
            handle = service.submit(
                EXPERIMENT,
                chips=n_chips,
                refs=n_references,
                # A fresh seed per repeat keeps every run a real compute.
                seed=seed + repeat,
            )
            for _ in handle.events(follow=True):
                latencies.append(time.perf_counter() - start)
                break
            handle.wait()
            service.close()
    return {
        "workload": f"{EXPERIMENT}: {n_chips} chips x {n_references} refs",
        "repeats": repeats,
        "first_event_s": latencies,
        "first_event_min_s": min(latencies),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chips", type=int, default=2,
                        help="chips per job (default 2)")
    parser.add_argument("--refs", type=int, default=800,
                        help="trace length per job (default 800)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="latency repeats (min is reported)")
    parser.add_argument("--require-dedupe", action="store_true",
                        help="fail unless the dedupe gate passes")
    parser.add_argument("--max-first-event-s", type=float, default=30.0,
                        help="fail when submit-to-first-event exceeds this")
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument("--out", default="BENCH_service.json")
    args = parser.parse_args(argv)

    print(
        f"dedupe gate: 2 concurrent identical {EXPERIMENT} jobs "
        f"({args.chips} chips, {args.refs} refs) ..."
    )
    dedupe = check_dedupe(args.chips, args.refs, args.seed)
    print(
        f"  {dedupe['computed_jobs']} computed, "
        f"{dedupe['cache_hits']} cache hits, byte-identical: "
        f"{dedupe['byte_identical']}"
    )

    print(
        f"latency: submit-to-first-event over {args.repeats} repeats ..."
    )
    latency = time_submit_latency(
        args.chips, args.refs, args.seed, args.repeats
    )
    print(f"  first event after {latency['first_event_min_s']:.3f}s (min)")

    latency_ok = latency["first_event_min_s"] <= args.max_first_event_s
    payload = {
        "benchmark": "service",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "seed": args.seed,
        "dedupe": dedupe,
        "latency": latency,
        "max_first_event_s": args.max_first_event_s,
        "latency_ok": latency_ok,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    if args.require_dedupe and not dedupe["ok"]:
        print("fleet-wide dedupe gate FAILED", file=sys.stderr)
        return 1
    if not latency_ok:
        print(
            f"first-event latency {latency['first_event_min_s']:.3f}s "
            f"exceeds {args.max_first_event_s:g}s gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
