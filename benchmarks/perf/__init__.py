"""Performance harness for the batched evaluation kernel.

Run ``python -m benchmarks.perf.batcheval_bench`` (with ``src`` on the
path) to time :func:`repro.core.batcheval.simulate_trace` against the
event controller and write machine-readable ``BENCH_batcheval.json``.
Unlike the figure-level benchmarks in ``benchmarks/``, this harness is a
CLI, not a pytest module, so CI can upload its JSON artifact and gate on
the kernel/controller bit-identity check.
"""
