"""Throughput benchmark for the geometry/banking sweep workload.

Runs :mod:`repro.experiments.geomsweep` on a configurable grid and
records sweep throughput (configurations and chip-scheme evaluations per
second) in ``BENCH_geomsweep.json``, the perf-trajectory record the CI
perf job uploads.

The run doubles as the kernel-coverage gate for swept geometries: with
``--require-full-coverage`` the bench fails (exit 1) unless every swept
cell replays entirely on the batched flattened/timeline kernels
(``fast_path_coverage == 1.0`` and zero event-controller fallbacks).
The CI smoke job runs the reduced default grid; the full 540-cell grid
is ``--sizes 16,32,64,128,256 --banks 2,4,8 --ways 1,2,4,8
--severities none,typical,severe``.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.geomsweep_bench \
        --chips 2 --refs 800 --out BENCH_geomsweep.json \
        --require-full-coverage
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import List, Optional

from repro.experiments import geomsweep
from repro.experiments.runner import ExperimentContext


def _int_tuple(text: str):
    return tuple(int(part) for part in text.split(","))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chips", type=int, default=2,
                        help="Monte-Carlo chips per (size, banks, severity)")
    parser.add_argument("--refs", type=int, default=800,
                        help="trace references per benchmark")
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument("--sizes", type=_int_tuple, default=(16, 64),
                        metavar="KB,KB,...",
                        help="cache sizes in KB (default: 16,64)")
    parser.add_argument("--banks", type=_int_tuple, default=(2, 4),
                        metavar="N,N,...",
                        help="bankings to sweep (default: 2,4)")
    parser.add_argument("--ways", type=_int_tuple, default=(1, 4),
                        metavar="N,N,...",
                        help="associativities to sweep (default: 1,4)")
    parser.add_argument("--severities", type=lambda s: tuple(s.split(",")),
                        default=("typical", "severe"),
                        metavar="NAME,NAME,...",
                        help="variation severities (default: typical,severe)")
    parser.add_argument("--out", default="BENCH_geomsweep.json")
    parser.add_argument("--require-full-coverage", action="store_true",
                        help="fail unless every swept cell has "
                        "fast_path_coverage == 1.0")
    args = parser.parse_args(argv)

    context = ExperimentContext(
        n_chips=args.chips, n_references=args.refs, seed=args.seed
    )
    grid = (
        f"{len(args.sizes)} sizes x {len(args.ways)} ways x "
        f"{len(args.banks)} banks x {len(geomsweep.SCHEMES)} schemes x "
        f"{len(args.severities)} severities"
    )
    print(f"geomsweep: {grid}, {args.chips} chips, {args.refs} refs ...")
    start = time.perf_counter()
    result = geomsweep.run(
        context,
        sizes_kb=args.sizes,
        banks_sweep=args.banks,
        ways_sweep=args.ways,
        severities=args.severities,
    )
    elapsed = time.perf_counter() - start

    evaluations = sum(row.chips for row in result.rows)
    fallback_cells = [
        f"{row.size_kb}KB/{row.ways}w/b{row.banks}/{row.severity}/"
        f"{row.scheme}"
        for row in result.rows
        if row.fast_path_coverage < 1.0
    ]
    print(
        f"  {result.n_configurations} configurations, {evaluations} "
        f"chip-scheme evaluations in {elapsed:.1f}s "
        f"({result.n_configurations / elapsed:.1f} configs/s)"
    )
    print(
        f"  fast_path_coverage: {result.fast_path_coverage:.3f} "
        f"({len(fallback_cells)} cells with event fallbacks)"
    )

    payload = {
        "benchmark": "geomsweep",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "seed": args.seed,
        "grid": {
            "sizes_kb": list(args.sizes),
            "ways": list(args.ways),
            "banks": list(args.banks),
            "schemes": list(geomsweep.SCHEMES),
            "severities": list(args.severities),
        },
        "chips": args.chips,
        "references": args.refs,
        "configurations": result.n_configurations,
        "evaluations": evaluations,
        "elapsed_s": elapsed,
        "configs_per_s": result.n_configurations / elapsed,
        "evaluations_per_s": evaluations / elapsed,
        "fast_path_coverage": result.fast_path_coverage,
        "event_fallback_cells": fallback_cells,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    if args.require_full_coverage and (
        result.fast_path_coverage < 1.0 or fallback_cells
    ):
        print(
            f"coverage gate FAILED: fast_path_coverage "
            f"{result.fast_path_coverage:.3f}, fallbacks: "
            f"{fallback_cells}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
