"""Time the batched evaluation kernels against the event controller.

Three stages, mirroring the guarantees the kernels make:

1. **Bit-identity check** -- every scheme x benchmark on a small chip
   batch, comparing the kernel-routed evaluation against
   ``use_batch_kernel=False``.  Any mismatch fails the run (exit 1).
2. **Coverage** -- ``kernel_support`` is queried for every scheme; the
   ``fast_path_coverage`` fraction reports how much of the scheme x
   benchmark grid replays without the event controller (the flattened
   or timeline kernels).  Since PR 6 every scheme has a kernel path,
   so the expected fraction is 1.0.
3. **Timing** -- the Figure 10 workload shape (severe-variation chips x
   the headline schemes) evaluated end to end through both paths, plus
   raw per-scheme ``simulate_trace`` vs ``run_trace`` timings.  Every
   row times the real kernel; there are no copied fallback rows.

Results land in ``BENCH_batcheval.json`` (see ``--out``), the repo's
perf-trajectory record.  CI passes ``--require-full-coverage`` and
``--min-suite-speedup 5`` to gate regressions.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.batcheval_bench \
        --chips 4 --refs 20000 --out BENCH_batcheval.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, List, Optional

from repro.array.chip import ChipSampler
from repro.core.architecture import Cache3T1DArchitecture
from repro.core.batcheval import kernel_support, simulate_trace
from repro.core.evaluation import Evaluator
from repro.core.schemes import (
    HEADLINE_SCHEMES,
    LINE_LEVEL_SCHEMES,
    SCHEME_GLOBAL,
)
from repro.errors import ChipDiscardedError
from repro.technology.node import NODE_32NM
from repro.variation.parameters import VariationParams

ALL_SCHEMES = (SCHEME_GLOBAL,) + LINE_LEVEL_SCHEMES


def _evaluate(evaluator, chip, scheme):
    try:
        return evaluator.evaluate(
            Cache3T1DArchitecture(chip, scheme, config=evaluator.config)
        )
    except ChipDiscardedError:
        return None


def check_identity(n_chips: int, n_references: int, seed: int) -> Dict:
    """Cross-validate kernel vs controller on every scheme x benchmark."""
    sampler = ChipSampler(NODE_32NM, VariationParams.severe(), seed=seed)
    chips = sampler.sample_3t1d_chips(n_chips)
    fast = Evaluator(NODE_32NM, n_references=n_references, seed=seed)
    slow = Evaluator(
        NODE_32NM, n_references=n_references, seed=seed,
        use_batch_kernel=False,
    )
    mismatches: List[str] = []
    checked = 0
    for chip in chips:
        for scheme in ALL_SCHEMES:
            a = _evaluate(fast, chip, scheme)
            b = _evaluate(slow, chip, scheme)
            if (a is None) != (b is None):
                mismatches.append(
                    f"chip {chip.chip_id} {scheme.name}: discard disagreement"
                )
                continue
            if a is None:
                checked += 1
                continue
            for bench in a.results:
                checked += 1
                ra, rb = a.results[bench], b.results[bench]
                if (
                    ra.stats != rb.stats
                    or ra.normalized_performance != rb.normalized_performance
                    or ra.dynamic_power_watts != rb.dynamic_power_watts
                ):
                    mismatches.append(
                        f"chip {chip.chip_id} {scheme.name} {bench}"
                    )
    return {
        "chips": n_chips,
        "references": n_references,
        "checked": checked,
        "mismatches": mismatches,
        "ok": not mismatches,
    }


def measure_coverage(evaluator: Evaluator, seed: int) -> Dict:
    """The fraction of the scheme x benchmark grid off the event path.

    ``kernel_support`` classifies per cache configuration, so every
    benchmark of a scheme shares that scheme's path; the grid framing
    matches how the suite timing (chips x schemes x benchmarks) scales.
    The probe chip is variation-free so every scheme (including global
    refresh, which discards weak severe-variation chips) can build.
    """
    sampler = ChipSampler(NODE_32NM, VariationParams.none(), seed=seed)
    chip = sampler.sample_3t1d_chips(1)[0]
    n_benchmarks = len(evaluator.benchmarks)
    paths: Dict[str, str] = {}
    covered = 0
    for scheme in ALL_SCHEMES:
        arch = Cache3T1DArchitecture(chip, scheme, config=evaluator.config)
        support = kernel_support(arch.build_cache())
        paths[scheme.name] = support.path
        if support.path != "event":
            covered += n_benchmarks
    cells = len(ALL_SCHEMES) * n_benchmarks
    return {
        "paths": paths,
        "cells": cells,
        "covered": covered,
        "fraction": covered / cells if cells else 0.0,
    }


def time_kernel(n_chips: int, n_references: int, seed: int) -> Dict:
    """Time both paths on the Figure 10 shape; returns the JSON payload."""
    sampler = ChipSampler(NODE_32NM, VariationParams.severe(), seed=seed)
    chips = sampler.sample_3t1d_chips(n_chips)
    fast = Evaluator(NODE_32NM, n_references=n_references, seed=seed)
    slow = Evaluator(
        NODE_32NM, n_references=n_references, seed=seed,
        use_batch_kernel=False,
    )
    # Warm traces, artifacts, and baselines outside the timed region.
    for evaluator in (fast, slow):
        for bench in evaluator.benchmarks:
            evaluator.baseline_stats(bench)
    for bench in fast.benchmarks:
        fast.trace_artifacts(bench, fast.config.geometry.n_sets)

    schemes: Dict[str, Dict] = {}
    for scheme in HEADLINE_SCHEMES:
        arch = Cache3T1DArchitecture(chips[0], scheme, config=fast.config)
        support = kernel_support(arch.build_cache())
        bench = fast.benchmarks[0]
        trace = fast.trace(bench)
        artifacts = fast.trace_artifacts(bench, fast.config.geometry.n_sets)
        start = time.perf_counter()
        arch.build_cache().run_trace(
            trace.cycles, trace.line_addresses, trace.is_write,
            warmup_references=trace.warmup_references,
        )
        controller_s = time.perf_counter() - start
        start = time.perf_counter()
        simulate_trace(arch.build_cache(), artifacts)
        kernel_s = time.perf_counter() - start
        schemes[scheme.name] = {
            "path": support.path,
            "trace_controller_s": controller_s,
            "trace_kernel_s": kernel_s,
            "trace_speedup": controller_s / kernel_s if kernel_s else 0.0,
        }

    coverage = measure_coverage(fast, seed)

    start = time.perf_counter()
    for chip in chips:
        for scheme in HEADLINE_SCHEMES:
            _evaluate(slow, chip, scheme)
    controller_total = time.perf_counter() - start
    start = time.perf_counter()
    for chip in chips:
        for scheme in HEADLINE_SCHEMES:
            _evaluate(fast, chip, scheme)
    kernel_total = time.perf_counter() - start

    speedups = [entry["trace_speedup"] for entry in schemes.values()]
    return {
        "workload": "fig10 shape: severe chips x headline schemes",
        "chips": n_chips,
        "references": n_references,
        "schemes": schemes,
        "fast_path_coverage": coverage["fraction"],
        "coverage": coverage,
        "suite_controller_s": controller_total,
        "suite_kernel_s": kernel_total,
        "suite_speedup": (
            controller_total / kernel_total if kernel_total else 0.0
        ),
        "min_scheme_speedup": min(speedups) if speedups else 0.0,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chips", type=int, default=4,
                        help="chips in the timing batch (default 4)")
    parser.add_argument("--refs", type=int, default=20000,
                        help="trace length for the timing batch")
    parser.add_argument("--identity-chips", type=int, default=2,
                        help="chips in the bit-identity check")
    parser.add_argument("--identity-refs", type=int, default=1500,
                        help="trace length for the bit-identity check")
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument("--out", default="BENCH_batcheval.json")
    parser.add_argument("--require-full-coverage", action="store_true",
                        help="fail unless fast_path_coverage == 1.0")
    parser.add_argument("--min-suite-speedup", type=float, default=None,
                        help="fail unless the suite speedup meets this floor")
    args = parser.parse_args(argv)

    print(
        f"identity check: {args.identity_chips} chips x "
        f"{len(ALL_SCHEMES)} schemes x 8 benchmarks "
        f"({args.identity_refs} refs) ..."
    )
    identity = check_identity(
        args.identity_chips, args.identity_refs, args.seed
    )
    print(
        f"  {identity['checked']} evaluations, "
        f"{len(identity['mismatches'])} mismatches"
    )

    print(
        f"timing: {args.chips} chips x headline schemes "
        f"({args.refs} refs) ..."
    )
    timing = time_kernel(args.chips, args.refs, args.seed)
    for name, entry in timing["schemes"].items():
        print(
            f"  {name:24s} [{entry['path']}] controller "
            f"{entry['trace_controller_s'] * 1e3:7.1f}ms  kernel "
            f"{entry['trace_kernel_s'] * 1e3:7.1f}ms  "
            f"{entry['trace_speedup']:.2f}x"
        )
    print(
        f"  coverage: {timing['coverage']['covered']}/"
        f"{timing['coverage']['cells']} scheme x benchmark cells "
        f"off the event path ({timing['fast_path_coverage']:.2f})"
    )
    print(
        f"  suite: controller {timing['suite_controller_s']:.2f}s  "
        f"kernel {timing['suite_kernel_s']:.2f}s  "
        f"{timing['suite_speedup']:.2f}x"
    )

    payload = {
        "benchmark": "batcheval",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "seed": args.seed,
        "identity": identity,
        "timing": timing,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    failed = False
    if not identity["ok"]:
        print("bit-identity check FAILED", file=sys.stderr)
        for mismatch in identity["mismatches"]:
            print(f"  {mismatch}", file=sys.stderr)
        failed = True
    if args.require_full_coverage and timing["fast_path_coverage"] < 1.0:
        print(
            f"coverage gate FAILED: fast_path_coverage "
            f"{timing['fast_path_coverage']:.2f} < 1.0",
            file=sys.stderr,
        )
        failed = True
    if (
        args.min_suite_speedup is not None
        and timing["suite_speedup"] < args.min_suite_speedup
    ):
        print(
            f"speedup gate FAILED: suite {timing['suite_speedup']:.2f}x "
            f"< {args.min_suite_speedup:g}x",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
