"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures, but the knobs the paper fixes by fiat -- each ablation
sweeps one and checks the direction the paper's choice implies:

* line-counter width (the paper's 3 bits),
* partial-refresh threshold (the paper's 6K cycles),
* refresh granularity (line vs the un-built word-level variant),
* write-back vs write-through,
* 6T protection alternatives (spares / ECC) vs switching to 3T1D.
"""

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.cache.counters import LineCounterConfig
from repro.core import (
    Cache3T1DArchitecture,
    Evaluator,
    SCHEME_NO_REFRESH_LRU,
    compare_refresh_granularity,
    redundancy,
)
from repro.core.schemes import RetentionScheme
from repro.core.yieldmodel import YieldModel
from benchmarks.conftest import run_once

BENCHMARKS = ("gcc", "mcf", "mesa")


def _median_chip(context):
    chips = context.chips_3t1d("severe")
    _, median, _ = YieldModel(chips).pick_good_median_bad()
    return median


def test_ablation_counter_bits(benchmark, context):
    """Wider counters quantise retention less aggressively.

    3 bits (the paper's pick) should recover most of what 5 bits offer;
    1-bit counters waste a large share of every line's retention.
    """
    chip = _median_chip(context)
    evaluator = context.evaluator()

    def sweep():
        results = {}
        for bits in (1, 2, 3, 5):
            counter = LineCounterConfig.for_chip(
                float(np.max(chip.retention_by_line) * chip.node.frequency),
                bits=bits,
            )
            architecture = Cache3T1DArchitecture(
                chip, SCHEME_NO_REFRESH_LRU, counter=counter
            )
            results[bits] = evaluator.evaluate(
                architecture, benchmarks=BENCHMARKS
            ).normalized_performance
        return results

    results = run_once(benchmark, sweep)
    print("\ncounter bits -> performance:", {
        bits: round(perf, 3) for bits, perf in results.items()
    })
    # Monotone: every extra counter bit recovers quantised-away retention.
    assert results[1] < results[2] < results[3] <= results[5] + 1e-9
    # The paper's 3-bit pick sits past the steep part of the curve: going
    # 1 -> 3 bits buys several times more than going 3 -> 5.
    assert (results[3] - results[1]) > 3 * (results[5] - results[3])


def test_ablation_partial_refresh_threshold(benchmark, context):
    """Sweep the partial-refresh threshold around the paper's 6K cycles.

    Longer guarantees cut expiry misses but add refresh traffic; the
    curve should be fairly flat around 6K (the paper's choice is not a
    cliff) and clearly better than a token threshold.
    """
    chip = _median_chip(context)

    def sweep():
        results = {}
        for threshold in (500, 2000, 6000, 12000, 24000):
            config = CacheConfig(partial_refresh_threshold_cycles=threshold)
            evaluator = Evaluator(
                context.node, config=config,
                n_references=context.n_references, seed=context.seed,
            )
            scheme = RetentionScheme(
                name=f"partial-{threshold}", refresh="partial-refresh",
                replacement="DSP",
            )
            architecture = Cache3T1DArchitecture(chip, scheme, config=config)
            results[threshold] = evaluator.evaluate(
                architecture, benchmarks=BENCHMARKS
            ).normalized_performance
        return results

    results = run_once(benchmark, sweep)
    print("\npartial threshold -> performance:", {
        t: round(p, 3) for t, p in results.items()
    })
    # Longer lifetime guarantees monotonically cut expiry misses.
    assert results[6000] >= results[500] - 0.005
    assert results[24000] >= results[6000] - 0.005
    # Diminishing returns: the 12K -> 24K step buys less than 500 -> 6K.
    assert (results[24000] - results[12000]) < (
        results[6000] - results[500] + 0.03
    )
    # NOTE (deviation from the paper): because our port-blocking model
    # credits the sub-array pairs' parallelism, extra refresh traffic is
    # nearly free and longer thresholds keep paying off, consistent with
    # full-refresh/DSP ranking highest in our Figure 9.  The paper charges
    # blocking globally and sees full refresh give ~1% back.


def test_ablation_word_level_refresh(benchmark, context):
    """The extension the paper declined: word-granularity refresh."""
    chips = context.chips_3t1d("severe")

    def sweep():
        comparisons = [
            compare_refresh_granularity(chip)
            for chip in chips
            if chip.retention_by_word is not None
        ]
        return [c for c in comparisons if c.weak_lines > 0]

    comparisons = run_once(benchmark, sweep)
    assert comparisons, "severe chips should have weak lines"
    savings = [c.bandwidth_saving for c in comparisons]
    ratios = [c.counter_hardware_ratio for c in comparisons]
    print(f"\nword-level refresh: bandwidth saving median "
          f"{np.median(savings):.0%}, counter hardware {ratios[0]:.0f}x")
    # Word granularity saves most of the refresh bandwidth...
    assert np.median(savings) > 0.5
    # ...at 8x the counter hardware -- the paper's "excessive overhead".
    assert all(r == pytest.approx(8.0) for r in ratios)


def test_ablation_write_policy(benchmark, context):
    """Write-back vs write-through under retention expiry.

    Write-through needs no expiry write-backs (the paper's observation)
    but pays continuous L2 write traffic.
    """
    chip = _median_chip(context)

    def sweep():
        out = {}
        for write_back in (True, False):
            config = CacheConfig(write_back=write_back)
            evaluator = Evaluator(
                context.node, config=config,
                n_references=context.n_references, seed=context.seed,
            )
            architecture = Cache3T1DArchitecture(
                chip, SCHEME_NO_REFRESH_LRU, config=config
            )
            result = evaluator.evaluate(architecture, benchmarks=BENCHMARKS)
            stats = result.results["gcc"].stats
            out[write_back] = (
                result.normalized_performance,
                stats.expiry_writebacks,
                stats.write_throughs,
            )
        return out

    results = run_once(benchmark, sweep)
    wb_perf, wb_expiry, wb_wt = results[True]
    wt_perf, wt_expiry, wt_wt = results[False]
    print(f"\nwrite-back: perf {wb_perf:.3f}, expiry write-backs {wb_expiry}; "
          f"write-through: perf {wt_perf:.3f}, L2 writes {wt_wt}")
    assert wt_expiry == 0  # no action needed on expiry
    assert wt_wt > 0
    assert wb_wt == 0


def test_ablation_6t_protection(benchmark):
    """Could spares/ECC have saved 6T instead? (section 2.1)"""

    def sweep():
        rates = {}
        for scenario, sigma in (("typical", 0.03), ("severe", 0.045)):
            from repro.cells import SRAM6TCell
            from repro.technology import NODE_32NM

            rate = SRAM6TCell(NODE_32NM).flip_probability(sigma)
            rates[scenario] = redundancy.protection_report(rate)
        ceiling = redundancy.max_tolerable_flip_rate(use_ecc=True)
        return rates, ceiling

    (rates, ceiling) = run_once(benchmark, sweep)
    for scenario, report in rates.items():
        print(f"\n{scenario}: {report}")
    print(f"max flip rate SECDED+16 spares can absorb: {ceiling:.2%}")

    # The paper's 64% line-failure anchor.
    assert rates["typical"].line_failure == pytest.approx(0.64, abs=0.03)
    # Spares alone are hopeless; even ECC cannot reach the typical rate.
    assert rates["typical"].spare_yield < 1e-6
    assert ceiling < rates["typical"].bit_flip_rate


def test_ablation_token_refresh_engine(benchmark, context):
    """Lazy refresh accounting vs the explicit token engine (section 4.3.1).

    The default simulator charges refreshes lazily at line end-of-life;
    the token engine schedules them online, serialized per sub-array pair
    with the conservative early-request margin.  Hit/miss behaviour and
    refresh counts must agree closely -- the margin's only visible cost is
    that sub-margin lines are not refreshable.
    """
    import repro.cache.refresh as refresh_mod
    from repro.cache.controller import RetentionAwareCache

    chip = _median_chip(context)
    evaluator = context.evaluator()
    trace = evaluator.trace("gcc")
    arch = Cache3T1DArchitecture(
        chip,
        RetentionScheme(
            name="full/DSP", refresh="full-refresh", replacement="DSP"
        ),
    )

    def sweep():
        out = {}
        for online in (False, True):
            cache = RetentionAwareCache(
                arch.config,
                retention_cycles=arch.retention_cycles_raw,
                replacement="DSP",
                refresh=refresh_mod.FullRefresh(),
                counter=arch.counter,
                online_refresh=online,
            )
            stats = cache.run_trace(
                trace.cycles, trace.line_addresses, trace.is_write,
                warmup_references=trace.warmup_references,
            )
            out[online] = (stats.hits, stats.misses, stats.line_refreshes,
                           cache.refresh_engine)
        return out

    results = run_once(benchmark, sweep)
    lazy_hits, lazy_misses, lazy_refreshes, _ = results[False]
    online_hits, online_misses, online_refreshes, engine = results[True]
    print(f"\nlazy: hits {lazy_hits} misses {lazy_misses} refreshes "
          f"{lazy_refreshes}; token: hits {online_hits} misses "
          f"{online_misses} refreshes {online_refreshes}, max token wait "
          f"{engine.max_token_wait} cycles")
    # Hit behaviour nearly identical.  The engine may lose a few hits on
    # lines whose retention cannot cover the token margin (unsustainable
    # lines expire where the lazy idealisation refreshed them) -- bound
    # the deficit at a few percent of the accesses.
    total = lazy_hits + lazy_misses
    assert online_hits >= lazy_hits - max(5, total // 25)
    # The conservative margin is not free: requesting the token
    # ``margin`` cycles early shortens every refresh period from r to
    # (r - margin), so the explicit engine refreshes MORE than the lazy
    # idealisation -- up to ~3x on short-retention severe chips.  This is
    # the quantified cost of the paper's "conservatively set the
    # retention time counter" rule.
    if lazy_refreshes:
        assert lazy_refreshes <= online_refreshes <= 4 * lazy_refreshes
    # Token serialization stayed bounded by the conservative margin.
    assert engine.max_token_wait <= engine.margin_cycles


def test_ablation_closed_form_vs_event(benchmark, context):
    """Closed-form evaluation vs the event simulator across real chips.

    The simulation-free estimator (microseconds per point) must track the
    event-driven authority closely enough to screen design spaces.
    """
    import numpy as np

    from repro.core.analytic import evaluate_analytically
    from repro.core import SCHEME_RSP_FIFO
    from repro.workloads import get_profile

    chips = context.chips_3t1d("severe")[:10]
    evaluator = context.evaluator()
    window = evaluator.trace("gcc").measured_window_cycles
    profile = get_profile("gcc")

    def sweep():
        pairs = []
        for chip in chips:
            architecture = Cache3T1DArchitecture(chip, SCHEME_RSP_FIFO)
            closed = evaluate_analytically(
                architecture, profile, window_cycles=window
            ).normalized_performance
            event = evaluator.evaluate_benchmark(
                architecture, "gcc"
            ).normalized_performance
            pairs.append((closed, event))
        return pairs

    pairs = run_once(benchmark, sweep)
    errors = [abs(c - e) for c, e in pairs]
    print(f"\nclosed-form vs event: mean |error| {np.mean(errors):.3f}, "
          f"max {np.max(errors):.3f} over {len(pairs)} chips")
    assert np.mean(errors) < 0.05
    assert np.max(errors) < 0.12


def test_ablation_variable_latency_6t(benchmark, context):
    """The related-work alternative: variable-latency 6T (section 6).

    Keeping the nominal clock and letting slow lines take an extra cycle
    rescues most of the frequency-binning loss -- but the paper's point
    stands: the 6T cell is still unstable (64% line failure at the 0.4%
    flip rate) and still leaks, so 3T1D wins the full comparison.
    """
    import numpy as np

    from repro.core import SCHEME_RSP_FIFO, redundancy
    from repro.core.variable_latency import evaluate_variable_latency
    from repro.core.yieldmodel import YieldModel
    from repro.workloads import get_profile

    profile = get_profile("gcc")
    evaluator = context.evaluator()

    def sweep():
        sram_chips = context.chips_sram("typical", 1.0)[:12]
        dram_chips = context.chips_3t1d("typical")[:12]
        binned = [c.normalized_frequency for c in sram_chips]
        var_lat = [
            evaluate_variable_latency(c, profile).normalized_performance
            for c in sram_chips
        ]
        rsp = [
            evaluator.evaluate_benchmark(
                Cache3T1DArchitecture(c, SCHEME_RSP_FIFO), "gcc"
            ).normalized_performance
            for c in dram_chips
        ]
        flip_rate = float(np.mean([c.flip_rate for c in sram_chips]))
        leak_6t = float(np.median([c.normalized_leakage for c in sram_chips]))
        leak_3t1d = float(
            np.median([c.normalized_leakage for c in dram_chips])
        )
        return binned, var_lat, rsp, flip_rate, leak_6t, leak_3t1d

    binned, var_lat, rsp, flip_rate, leak_6t, leak_3t1d = run_once(
        benchmark, sweep
    )
    print(
        f"\nmedian perf: freq-binned 6T {np.median(binned):.3f}, "
        f"variable-latency 6T {np.median(var_lat):.3f}, 3T1D RSP-FIFO "
        f"{np.median(rsp):.3f}; 6T flip rate {flip_rate:.2%}, leakage "
        f"6T {leak_6t:.1f}x vs 3T1D {leak_3t1d:.1f}x"
    )
    # Performance: variable latency rescues binning; 3T1D is comparable.
    assert np.median(var_lat) > np.median(binned) + 0.05
    assert abs(np.median(rsp) - np.median(var_lat)) < 0.1
    # But 6T stability is broken regardless of the latency trick...
    assert redundancy.line_failure_probability(flip_rate, 256) > 0.5
    # ...and the 6T cache leaks several times the 3T1D one.
    assert leak_6t > 2.5 * leak_3t1d
