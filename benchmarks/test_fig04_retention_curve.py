"""Regenerate Figure 4: 3T1D access time vs. time since write."""

import numpy as np

from repro.experiments import fig04_retention_curve
from benchmarks.conftest import run_once


def test_fig04_retention_curve(benchmark):
    result = run_once(benchmark, fig04_retention_curve.run)
    print("\n" + fig04_retention_curve.report(result))

    # Paper anchors: nominal ~5.8us retention; weak corner ~4us.
    assert result.retention_us["nominal"] == np.round(5.8, 6)
    assert 2.5 < result.retention_us["weak"] < 5.0
    assert result.retention_us["strong"] >= result.retention_us["nominal"]

    # Fresh cells are faster than 6T (paper: read boosted well above Vth).
    nominal = result.curves["nominal"]
    assert nominal[0] < 0.7

    # Curves rise monotonically toward and past the 6T line.
    finite = nominal[np.isfinite(nominal)]
    assert np.all(np.diff(finite) > 0)

    # The weak corner decays faster: later in the window its access time
    # sits above the nominal curve even though the leaky write device
    # leaves it a slightly higher stored level (and faster read) at t=0.
    weak = result.curves["weak"]
    late = result.elapsed_us >= 3.0
    mask = late & np.isfinite(weak) & np.isfinite(nominal)
    assert np.all(weak[mask] >= nominal[mask])
