"""Regenerate Figure 6: 6T frequency vs. 3T1D retention distributions."""

import numpy as np

from repro.experiments import fig06_typical
from benchmarks.conftest import run_once


def test_fig06_distributions(benchmark, context):
    result = run_once(benchmark, fig06_typical.run, context)
    print("\n" + fig06_typical.report(result))

    centers = np.arange(0.775, 1.076, 0.025)

    # 6a: 1X 6T chips cluster around 10-20% frequency loss.
    mean_1x = float(np.dot(centers, result.frequency_histogram_1x))
    assert 0.78 < mean_1x < 0.92

    # 6a: 2X recovers a large part of the loss.
    mean_2x = float(np.dot(centers, result.frequency_histogram_2x))
    assert mean_2x > mean_1x + 0.04

    # 6b: retention histogram covers the paper's 476-3094ns axis with the
    # bulk in the middle, and most operable chips lose < 2%.
    assert result.retention_histogram.sum() > 0.99
    assert result.chips_within_2pct() > 0.75

    # 6b: performance rises and refresh power falls with retention.
    if len(result.points) >= 6:
        perfs = [p.mean_performance for p in result.points]
        refresh = [p.refresh_dynamic_power for p in result.points]
        # Compare the short-retention third to the long-retention third.
        third = max(1, len(perfs) // 3)
        assert np.mean(perfs[-third:]) >= np.mean(perfs[:third]) - 1e-9
        assert np.mean(refresh[:third]) > np.mean(refresh[-third:])

    # 6b: total dynamic power overhead within the paper's 1.3-2.25X band
    # (allowing band edges some slack).
    totals = [p.total_dynamic_power for p in result.points]
    assert 1.1 < min(totals) < 1.7
    assert max(totals) < 3.0
