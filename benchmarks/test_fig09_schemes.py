"""Regenerate Figure 9: eight line-level schemes x good/median/bad chips."""

from repro.experiments import fig09_schemes
from benchmarks.conftest import run_once


def test_fig09_schemes(benchmark, context):
    result = run_once(benchmark, fig09_schemes.run, context)
    print("\n" + fig09_schemes.report(result))

    perf = result.performance

    # Paper: the LRU-only schemes suffer most on the bad chip.
    assert perf["no-refresh/LRU"]["bad"] == min(
        by_chip["bad"] for by_chip in perf.values()
    )

    # Paper: dead-sensitivity pays off on the bad chip.
    assert perf["no-refresh/DSP"]["bad"] > perf["no-refresh/LRU"]["bad"]

    # Paper: partial refresh buys 1-2% over no-refresh.
    assert perf["partial-refresh/LRU"]["bad"] > perf["no-refresh/LRU"]["bad"]
    assert (
        perf["partial-refresh/DSP"]["bad"]
        >= perf["no-refresh/DSP"]["bad"] - 0.005
    )

    # Paper: the retention-sensitive placements are among the best
    # everywhere; on the good chip they sit within ~3% of ideal.
    for chip in ("good", "median", "bad"):
        assert perf["RSP-FIFO"][chip] > perf["no-refresh/LRU"][chip]
    assert perf["RSP-FIFO"]["good"] > 0.95
    assert perf["RSP-LRU"]["good"] > 0.95

    # Every scheme keeps every chip running (the yield argument).  The
    # reproduction's severe tail is heavier than the paper's, so the
    # retention-blind schemes may lose more on the bad chip than the
    # paper's ~12%, but nothing is ever discarded.
    for by_chip in perf.values():
        for value in by_chip.values():
            assert value > 0.3
    for chip in ("good", "median", "bad"):
        assert perf["RSP-FIFO"][chip] > 0.85
        assert perf["partial-refresh/DSP"][chip] > 0.85
