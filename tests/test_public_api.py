"""Public API surface checks."""

import importlib

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.technology",
            "repro.variation",
            "repro.cells",
            "repro.array",
            "repro.cache",
            "repro.cpu",
            "repro.workloads",
            "repro.core",
            "repro.experiments",
        ],
    )
    def test_subpackage_alls_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_quickstart_docstring_flow(self):
        """The flow shown in the package docstring works verbatim."""
        from repro import ChipSampler, Evaluator, NODE_32NM, VariationParams
        from repro import evaluate

        sampler = ChipSampler(NODE_32NM, VariationParams.severe(), seed=1)
        chip = sampler.sample_3t1d_chip()
        result = evaluate(
            chip, "partial-refresh/DSP",
            Evaluator(NODE_32NM, n_references=1500),
            benchmarks=["gcc"],
        )
        assert 0.0 < result.normalized_performance <= 1.05


class TestFacade:
    """The stable top-level facade (ISSUE 2 satellite)."""

    REQUIRED = [
        "ChipSampler",
        "VariationParams",
        "RetentionScheme",
        "CacheConfig",
        "evaluate",
        "evaluate_many",
        "TraceArtifacts",
        "Evaluator",
    ]

    def test_required_names_in_all(self):
        for name in self.REQUIRED:
            assert name in repro.__all__, name

    def test_all_has_no_duplicates(self):
        seen = set()
        dupes = [n for n in repro.__all__ if n in seen or seen.add(n)]
        assert not dupes, dupes

    def test_star_import_resolves_everything(self):
        namespace = {}
        exec("from repro import *", namespace)
        missing = [n for n in repro.__all__ if n not in namespace]
        assert not missing, missing

    def test_facade_evaluate_many(self):
        from repro import (
            ChipSampler,
            Evaluator,
            NODE_32NM,
            VariationParams,
            evaluate_many,
        )

        chips = ChipSampler(
            NODE_32NM, VariationParams.typical(), seed=5
        ).sample_3t1d_chips(2)
        suite = Evaluator(NODE_32NM, n_references=800)
        rows = evaluate_many(
            chips, ["no-refresh/LRU"], suite, benchmarks=["gcc"]
        )
        assert len(rows) == 2
        assert all(row[0] is not None for row in rows)


class TestDeterminism:
    def test_full_evaluation_reproducible(self):
        from repro import (
            Cache3T1DArchitecture,
            ChipSampler,
            Evaluator,
            NODE_32NM,
            SCHEME_PARTIAL_DSP,
            VariationParams,
        )

        def run():
            chip = ChipSampler(
                NODE_32NM, VariationParams.severe(), seed=42
            ).sample_3t1d_chip()
            evaluator = Evaluator(NODE_32NM, n_references=1500, seed=7)
            return evaluator.evaluate(
                Cache3T1DArchitecture(chip, SCHEME_PARTIAL_DSP),
                benchmarks=["gcc", "mcf"],
            )

        first = run()
        second = run()
        assert first.normalized_performance == second.normalized_performance
        assert (
            first.dynamic_power_normalized == second.dynamic_power_normalized
        )
        for name in first.results:
            assert (
                first.results[name].stats.misses
                == second.results[name].stats.misses
            )
