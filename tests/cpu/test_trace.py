"""Instruction trace container."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.cpu.isa import MicroOp, OpClass
from repro.cpu.trace import InstructionTrace


@pytest.fixture
def small_trace():
    ops = [
        MicroOp(op=OpClass.INT_ALU),
        MicroOp(op=OpClass.LOAD, dep1=1, line_address=10),
        MicroOp(op=OpClass.STORE, line_address=11),
        MicroOp(op=OpClass.BRANCH, pc=5, taken=True),
        MicroOp(op=OpClass.FP_ALU, dep1=2, dep2=3),
    ]
    return InstructionTrace.from_micro_ops(ops, name="unit")


class TestRoundTrip:
    def test_length(self, small_trace):
        assert len(small_trace) == 5

    def test_micro_op_reconstruction(self, small_trace):
        load = small_trace.micro_op(1)
        assert load.op is OpClass.LOAD
        assert load.dep1 == 1
        assert load.line_address == 10

    def test_iteration(self, small_trace):
        ops = list(small_trace)
        assert [o.op for o in ops] == [
            OpClass.INT_ALU, OpClass.LOAD, OpClass.STORE,
            OpClass.BRANCH, OpClass.FP_ALU,
        ]

    def test_name(self, small_trace):
        assert small_trace.name == "unit"


class TestStatistics:
    def test_memory_fraction(self, small_trace):
        assert small_trace.memory_fraction == pytest.approx(2 / 5)

    def test_branch_fraction(self, small_trace):
        assert small_trace.branch_fraction == pytest.approx(1 / 5)

    def test_masks(self, small_trace):
        assert list(small_trace.memory_mask) == [False, True, True, False, False]
        assert list(small_trace.store_mask) == [False, False, True, False, False]

    def test_empty_trace_fractions(self):
        trace = InstructionTrace.from_micro_ops([])
        assert trace.memory_fraction == 0.0
        assert trace.branch_fraction == 0.0


class TestMemoryReferenceStream:
    def test_extraction(self, small_trace):
        stream = small_trace.memory_references()
        assert len(stream) == 2
        assert list(stream.line_address) == [10, 11]
        assert list(stream.is_store) == [False, True]
        assert list(stream.instruction_index) == [1, 2]

    def test_cycles_at_ipc(self, small_trace):
        stream = small_trace.memory_references()
        cycles = stream.cycles_at_ipc(0.5)
        assert list(cycles) == [2, 4]

    def test_cycles_rejects_bad_ipc(self, small_trace):
        with pytest.raises(TraceError):
            small_trace.memory_references().cycles_at_ipc(0.0)


class TestValidation:
    def test_mismatched_arrays_rejected(self):
        with pytest.raises(TraceError):
            InstructionTrace(
                op=np.zeros(3, dtype=np.int8),
                dep1=np.zeros(2, dtype=np.int32),
                dep2=np.zeros(3, dtype=np.int32),
                line_address=np.full(3, -1, dtype=np.int64),
                pc=np.zeros(3, dtype=np.int64),
                taken=np.zeros(3, dtype=bool),
            )
