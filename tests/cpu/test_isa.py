"""Micro-op records."""

import pytest

from repro.errors import TraceError
from repro.cpu.isa import EXECUTION_LATENCY, MicroOp, OpClass


class TestMicroOp:
    def test_alu_defaults(self):
        op = MicroOp(op=OpClass.INT_ALU)
        assert op.dep1 == 0
        assert op.line_address == -1
        assert not op.is_memory
        assert not op.is_branch

    def test_load_requires_address(self):
        with pytest.raises(TraceError):
            MicroOp(op=OpClass.LOAD)

    def test_store_requires_address(self):
        with pytest.raises(TraceError):
            MicroOp(op=OpClass.STORE)

    def test_alu_must_not_have_address(self):
        with pytest.raises(TraceError):
            MicroOp(op=OpClass.INT_ALU, line_address=5)

    def test_memory_flags(self):
        load = MicroOp(op=OpClass.LOAD, line_address=7)
        store = MicroOp(op=OpClass.STORE, line_address=7)
        assert load.is_memory and store.is_memory

    def test_branch_flag(self):
        branch = MicroOp(op=OpClass.BRANCH, pc=3, taken=True)
        assert branch.is_branch

    def test_negative_dep_rejected(self):
        with pytest.raises(TraceError):
            MicroOp(op=OpClass.INT_ALU, dep1=-1)


class TestLatencies:
    def test_every_class_has_latency(self):
        for op_class in OpClass:
            assert op_class in EXECUTION_LATENCY

    def test_single_cycle_alu(self):
        assert EXECUTION_LATENCY[OpClass.INT_ALU] == 1

    def test_multiply_slower_than_alu(self):
        assert EXECUTION_LATENCY[OpClass.INT_MUL] > EXECUTION_LATENCY[OpClass.INT_ALU]

    def test_load_latency_comes_from_memory_model(self):
        assert EXECUTION_LATENCY[OpClass.LOAD] == 0
