"""CacheMemory adapter between the pipeline and the cache simulator."""

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.cache.controller import RetentionAwareCache
from repro.cpu import CacheMemory
from repro.cpu.memory import REPLAY_LATENCY_CYCLES


@pytest.fixture
def config():
    return CacheConfig()


class TestLatencies:
    def test_hit_latency(self, config):
        memory = CacheMemory(RetentionAwareCache(config), config)
        memory.load(0, 42)  # miss, fills
        assert memory.load(10, 42) == pytest.approx(
            config.hit_latency_cycles
        )

    def test_miss_latency(self, config):
        memory = CacheMemory(RetentionAwareCache(config), config)
        latency = memory.load(0, 42)
        assert latency == pytest.approx(
            config.hit_latency_cycles + config.miss_latency_cycles
        )

    def test_expired_access_adds_replay(self, config):
        grid = np.full((config.geometry.n_sets, config.geometry.ways), 1000)
        cache = RetentionAwareCache(config, grid, quantize=False)
        memory = CacheMemory(cache, config)
        memory.load(0, 42)
        latency = memory.load(5000, 42)  # expired
        assert latency == pytest.approx(
            config.hit_latency_cycles
            + config.miss_latency_cycles
            + REPLAY_LATENCY_CYCLES
        )

    def test_store_latency(self, config):
        memory = CacheMemory(RetentionAwareCache(config), config)
        assert memory.store(0, 7) > 0


class TestClockClamping:
    def test_out_of_order_cycles_tolerated(self, config):
        memory = CacheMemory(RetentionAwareCache(config), config)
        memory.load(100, 1)
        # The OoO core may issue an older op later; must not raise.
        memory.load(50, 2)
        assert memory.cache.stats.accesses == 2

    def test_clock_monotone(self, config):
        memory = CacheMemory(RetentionAwareCache(config), config)
        memory.load(100, 1)
        memory.load(50, 2)
        memory.load(60, 3)
        assert memory.cache.window_cycles >= 100
