"""Tournament branch predictor."""

import numpy as np

from repro.cpu.branch import TournamentPredictor


class TestLearning:
    def test_learns_always_taken(self):
        predictor = TournamentPredictor()
        for _ in range(200):
            predictor.update(pc=1, taken=True)
        assert predictor.predict(1) is True

    def test_learns_never_taken(self):
        predictor = TournamentPredictor()
        for _ in range(200):
            predictor.update(pc=2, taken=False)
        assert predictor.predict(2) is False

    def test_learns_alternating_pattern_via_local_history(self):
        # T,N,T,N ... is perfectly predictable from 10-bit local history.
        predictor = TournamentPredictor()
        outcome = True
        mispredicts_late = 0
        for i in range(2000):
            mispredicted = predictor.update(pc=3, taken=outcome)
            if i >= 1500 and mispredicted:
                mispredicts_late += 1
            outcome = not outcome
        assert mispredicts_late == 0

    def test_random_branches_mispredict_often(self):
        predictor = TournamentPredictor()
        rng = np.random.default_rng(0)
        outcomes = rng.random(4000) < 0.5
        for taken in outcomes:
            predictor.update(pc=4, taken=bool(taken))
        assert predictor.misprediction_rate > 0.3

    def test_biased_branches_mostly_predicted(self):
        predictor = TournamentPredictor()
        rng = np.random.default_rng(1)
        outcomes = rng.random(4000) < 0.9
        for taken in outcomes:
            predictor.update(pc=5, taken=bool(taken))
        assert predictor.misprediction_rate < 0.2


class TestBookkeeping:
    def test_counts(self):
        predictor = TournamentPredictor()
        for _ in range(10):
            predictor.update(pc=1, taken=True)
        assert predictor.predictions == 10
        assert 0 <= predictor.mispredictions <= 10

    def test_rate_with_no_predictions(self):
        assert TournamentPredictor().misprediction_rate == 0.0

    def test_update_reports_mispredict_consistently(self):
        predictor = TournamentPredictor()
        mispredicted = []
        for _ in range(50):
            mispredicted.append(predictor.update(pc=9, taken=True))
        assert sum(mispredicted) == predictor.mispredictions

    def test_penalty_configurable(self):
        predictor = TournamentPredictor(mispredict_penalty_cycles=11)
        assert predictor.mispredict_penalty_cycles == 11

    def test_distinct_pcs_tracked_separately(self):
        predictor = TournamentPredictor()
        for _ in range(300):
            predictor.update(pc=10, taken=True)
            predictor.update(pc=11, taken=False)
        assert predictor.predict(10) is True
        assert predictor.predict(11) is False
