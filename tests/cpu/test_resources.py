"""Functional units and windows."""

import pytest

from repro.errors import ConfigurationError
from repro.cpu.resources import FunctionalUnitPool, ResourceWindow


class TestFunctionalUnitPool:
    def test_free_pool_issues_immediately(self):
        pool = FunctionalUnitPool(2)
        assert pool.earliest_issue(5.0) == 5.0

    def test_pipelined_units_accept_every_cycle(self):
        pool = FunctionalUnitPool(1, pipelined=True)
        pool.issue(0.0, latency=7)
        assert pool.earliest_issue(0.0) == 1.0

    def test_nonpipelined_units_block_for_latency(self):
        pool = FunctionalUnitPool(1, pipelined=False)
        pool.issue(0.0, latency=7)
        assert pool.earliest_issue(0.0) == 7.0

    def test_multiple_units_round_robin(self):
        pool = FunctionalUnitPool(2, pipelined=False)
        pool.issue(0.0, latency=4)
        assert pool.earliest_issue(0.0) == 0.0  # second unit free
        pool.issue(0.0, latency=4)
        assert pool.earliest_issue(0.0) == 4.0

    def test_reset(self):
        pool = FunctionalUnitPool(1, pipelined=False)
        pool.issue(0.0, latency=9)
        pool.reset()
        assert pool.earliest_issue(0.0) == 0.0

    def test_rejects_zero_units(self):
        with pytest.raises(ConfigurationError):
            FunctionalUnitPool(0)


class TestResourceWindow:
    def test_under_capacity_no_stall(self):
        window = ResourceWindow(4)
        for i in range(4):
            assert window.admit(float(i), float(i) + 10) == float(i)

    def test_full_window_stalls_until_release(self):
        window = ResourceWindow(2)
        window.admit(0.0, 100.0)
        window.admit(0.0, 50.0)
        # Third entry must wait for the earliest release (50).
        assert window.admit(1.0, 200.0) == 50.0

    def test_occupancy(self):
        window = ResourceWindow(3)
        window.admit(0.0, 10.0)
        window.admit(0.0, 20.0)
        assert window.occupancy == 2

    def test_reset(self):
        window = ResourceWindow(1)
        window.admit(0.0, 100.0)
        window.reset()
        assert window.occupancy == 0
        assert window.admit(0.0, 10.0) == 0.0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            ResourceWindow(0)
