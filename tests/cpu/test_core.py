"""Core configuration (Table 2) and assembly."""

import pytest

from repro.errors import ConfigurationError
from repro.cpu import Core, CoreConfig
from repro.cpu.isa import MicroOp, OpClass
from repro.cpu.trace import InstructionTrace


class TestTable2Defaults:
    def test_paper_values(self):
        config = CoreConfig()
        assert config.issue_width == 4
        assert config.rob_entries == 80
        assert config.int_queue_entries == 20
        assert config.fp_queue_entries == 15
        assert config.load_queue_entries == 32
        assert config.store_queue_entries == 32
        assert config.int_units == 4
        assert config.fp_units == 2
        assert config.l1_read_ports == 2
        assert config.l1_write_ports == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(issue_width=0)
        with pytest.raises(ConfigurationError):
            CoreConfig(rob_entries=0)


class TestCore:
    def test_build_pipeline_fresh_state(self):
        core = Core()
        a = core.build_pipeline()
        b = core.build_pipeline()
        assert a is not b
        assert a.predictor is not b.predictor

    def test_predictor_penalty_forwarded(self):
        core = Core(CoreConfig(mispredict_penalty_cycles=11))
        pipeline = core.build_pipeline()
        assert pipeline.predictor.mispredict_penalty_cycles == 11

    def test_run_defaults_to_ideal_memory(self):
        trace = InstructionTrace.from_micro_ops(
            [MicroOp(op=OpClass.INT_ALU) for _ in range(100)]
        )
        result = Core().run(trace)
        assert result.instructions == 100
        assert result.ipc > 0

    def test_runs_are_independent(self):
        trace = InstructionTrace.from_micro_ops(
            [MicroOp(op=OpClass.BRANCH, pc=1, taken=True) for _ in range(200)]
        )
        core = Core()
        first = core.run(trace)
        second = core.run(trace)
        # A fresh predictor each run: identical results.
        assert first.branch_mispredictions == second.branch_mispredictions
        assert first.cycles == second.cycles
