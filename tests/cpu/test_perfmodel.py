"""Analytic CPU performance model."""

import pytest

from repro.errors import ConfigurationError
from repro.cache import CacheStats
from repro.cache.config import CacheConfig
from repro.cpu.perfmodel import AnalyticCPUModel, PerformanceEstimate
from repro.workloads import get_profile


@pytest.fixture
def model():
    return AnalyticCPUModel(get_profile("gcc"), CacheConfig())


def stats_with(**kwargs):
    stats = CacheStats()
    for key, value in kwargs.items():
        setattr(stats, key, value)
    return stats


class TestBaseline:
    def test_clean_stats_give_base_ipc(self, model):
        estimate = model.estimate(
            stats_with(loads=100), instructions=1000, window_cycles=1000
        )
        assert estimate.ipc == pytest.approx(model.baseline_ipc, rel=1e-6)

    def test_baseline_consistency(self, model):
        assert model.baseline_cpi == pytest.approx(1.0 / model.baseline_ipc)

    def test_miss_latency_blends_l2_and_memory(self, model):
        latency = model.miss_latency_cycles()
        config = CacheConfig()
        assert config.l2_latency_cycles < latency < config.memory_latency_cycles


class TestPenalties:
    def test_extra_misses_lower_ipc(self, model):
        estimate = model.estimate(
            stats_with(loads=1000, misses_cold=100),
            instructions=3000,
            window_cycles=3000,
        )
        assert estimate.ipc < model.baseline_ipc
        assert estimate.cpi_extra_miss > 0

    def test_baseline_misses_not_charged(self, model):
        baseline = stats_with(loads=1000, misses_cold=50)
        same = model.estimate(
            baseline, instructions=3000, window_cycles=3000,
            baseline_stats=baseline,
        )
        assert same.ipc == pytest.approx(model.baseline_ipc)

    def test_expired_misses_add_replay(self, model):
        cold = model.estimate(
            stats_with(loads=1000, misses_cold=50),
            instructions=3000, window_cycles=3000,
        )
        expired = model.estimate(
            stats_with(loads=1000, misses_expired=50),
            instructions=3000, window_cycles=3000,
        )
        assert expired.ipc < cold.ipc
        assert expired.cpi_replay > 0

    def test_port_blocking_lowers_ipc(self, model):
        blocked = model.estimate(
            stats_with(loads=1000, refresh_blocked_cycles=2000),
            instructions=3000, window_cycles=4000,
        )
        assert blocked.cpi_port_block > 0
        assert blocked.ipc < model.baseline_ipc

    def test_pair_parallelism_derates_blocking(self, model):
        stats = stats_with(loads=1000, refresh_blocked_cycles=2000)
        global_block = model.estimate(
            stats, instructions=3000, window_cycles=4000,
            port_block_parallelism=1.0,
        )
        pair_block = model.estimate(
            stats, instructions=3000, window_cycles=4000,
            port_block_parallelism=4.0,
        )
        assert pair_block.cpi_port_block == pytest.approx(
            global_block.cpi_port_block / 4
        )

    def test_write_stalls_charged_directly(self, model):
        estimate = model.estimate(
            stats_with(loads=10, write_buffer_stall_cycles=300),
            instructions=3000, window_cycles=3000,
        )
        assert estimate.cpi_write_stall == pytest.approx(0.1)


class TestGlobalRefreshEstimate:
    def test_zero_duty_is_baseline(self, model):
        estimate = model.estimate_global_refresh(0.0)
        assert estimate.ipc == pytest.approx(model.baseline_ipc)

    def test_duty_monotone(self, model):
        perfs = [
            model.estimate_global_refresh(duty).ipc
            for duty in (0.0, 0.25, 0.5, 1.0)
        ]
        assert perfs == sorted(perfs, reverse=True)

    def test_saturated_duty_small_loss(self, model):
        # Paper Figure 6b: even retention at the pass time costs only a
        # few percent.
        worst = model.estimate_global_refresh(1.0)
        assert worst.ipc / model.baseline_ipc > 0.9

    def test_duty_validation(self, model):
        with pytest.raises(ConfigurationError):
            model.estimate_global_refresh(1.5)


class TestEstimateValidation:
    def test_rejects_zero_instructions(self, model):
        with pytest.raises(ConfigurationError):
            model.estimate(CacheStats(), instructions=0, window_cycles=10)

    def test_rejects_zero_window(self, model):
        with pytest.raises(ConfigurationError):
            model.estimate(CacheStats(), instructions=10, window_cycles=0)

    def test_rejects_parallelism_below_one(self, model):
        with pytest.raises(ConfigurationError):
            model.estimate(
                CacheStats(), instructions=10, window_cycles=10,
                port_block_parallelism=0.5,
            )

    def test_slowdown_vs_validation(self):
        estimate = PerformanceEstimate(
            ipc=1.0, cpi_base=1.0, cpi_extra_miss=0.0, cpi_replay=0.0,
            cpi_port_block=0.0, cpi_write_stall=0.0,
        )
        with pytest.raises(ConfigurationError):
            estimate.slowdown_vs(0.0)
        assert estimate.slowdown_vs(2.0) == pytest.approx(0.5)
