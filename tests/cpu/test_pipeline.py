"""Out-of-order pipeline timing model."""

import numpy as np
import pytest

from repro.cpu import Core, CoreConfig
from repro.cpu.isa import MicroOp, OpClass
from repro.cpu.pipeline import IdealMemory
from repro.cpu.trace import InstructionTrace


def alu(dep1=0, dep2=0):
    return MicroOp(op=OpClass.INT_ALU, dep1=dep1, dep2=dep2)


def trace_of(ops):
    return InstructionTrace.from_micro_ops(ops)


@pytest.fixture
def core():
    return Core()


class TestBasicThroughput:
    def test_independent_alu_ipc_near_width(self, core):
        # Plenty of independent single-cycle work: IPC approaches the
        # 4-wide dispatch limit (bounded by 4 INT units).
        result = core.run(trace_of([alu() for _ in range(4000)]))
        assert result.ipc > 3.0

    def test_serial_chain_ipc_near_one(self, core):
        result = core.run(trace_of([alu(dep1=1) for _ in range(2000)]))
        assert result.ipc == pytest.approx(1.0, abs=0.15)

    def test_multiply_chain_slower(self, core):
        muls = [MicroOp(op=OpClass.INT_MUL, dep1=1) for _ in range(500)]
        result = core.run(trace_of(muls))
        assert result.ipc < 0.2  # 7-cycle latency chain

    def test_empty_trace(self, core):
        result = core.run(trace_of([]))
        assert result.instructions == 0
        assert result.cycles == 0
        assert result.ipc == 0.0

    def test_counts(self, core):
        ops = [
            MicroOp(op=OpClass.LOAD, line_address=1),
            MicroOp(op=OpClass.STORE, line_address=2),
            MicroOp(op=OpClass.BRANCH, pc=1, taken=True),
            alu(),
        ]
        result = core.run(trace_of(ops))
        assert result.loads == 1
        assert result.stores == 1
        assert result.branches == 1
        assert result.instructions == 4


class TestResourceLimits:
    def test_fp_units_limit_fp_throughput(self, core):
        fp_ops = [MicroOp(op=OpClass.FP_ALU) for _ in range(2000)]
        result = core.run(trace_of(fp_ops))
        # Only 2 FP units: IPC capped at ~2 even though dispatch is 4-wide.
        assert result.ipc < 2.3

    def test_load_ports_limit_load_throughput(self, core):
        loads = [
            MicroOp(op=OpClass.LOAD, line_address=i) for i in range(2000)
        ]
        result = core.run(trace_of(loads))
        # 2 read ports: at most 2 loads per cycle.
        assert result.ipc < 2.3

    def test_narrow_dispatch_caps_ipc(self):
        narrow = Core(CoreConfig(issue_width=1, commit_width=1))
        result = narrow.run(trace_of([alu() for _ in range(1000)]))
        assert result.ipc <= 1.05

    def test_tiny_rob_hurts_latency_tolerance(self):
        ops = []
        for i in range(400):
            ops.append(MicroOp(op=OpClass.INT_MUL, dep1=0))
            ops.extend(alu() for _ in range(9))
        big = Core(CoreConfig(rob_entries=80)).run(trace_of(ops))
        small = Core(CoreConfig(rob_entries=8)).run(trace_of(ops))
        assert small.ipc < big.ipc


class TestMemoryLatency:
    def test_slower_memory_lowers_ipc(self, core):
        ops = []
        for i in range(300):
            ops.append(MicroOp(op=OpClass.LOAD, line_address=i))
            ops.append(alu(dep1=1))  # consumer of the load
        fast = Core().run(trace_of(ops), IdealMemory(hit_latency_cycles=3))
        slow = Core().run(trace_of(ops), IdealMemory(hit_latency_cycles=30))
        assert slow.ipc < fast.ipc

    def test_unconsumed_load_latency_mostly_hidden(self, core):
        ops = []
        for i in range(300):
            ops.append(MicroOp(op=OpClass.LOAD, line_address=i))
            ops.extend(alu() for _ in range(3))
        fast = Core().run(trace_of(ops), IdealMemory(hit_latency_cycles=3))
        slow = Core().run(trace_of(ops), IdealMemory(hit_latency_cycles=12))
        # Independent work hides much of the extra latency.
        assert slow.ipc > 0.6 * fast.ipc


class TestBranches:
    def test_predictable_branches_cheap(self, core):
        ops = []
        for i in range(2000):
            ops.append(MicroOp(op=OpClass.BRANCH, pc=1, taken=True))
            ops.append(alu())
        result = core.run(trace_of(ops))
        assert result.branch_misprediction_rate < 0.05

    def test_random_branches_cost_throughput(self):
        rng = np.random.default_rng(3)
        predictable, random_ops = [], []
        for i in range(1500):
            predictable.append(MicroOp(op=OpClass.BRANCH, pc=1, taken=True))
            predictable.append(alu())
            random_ops.append(
                MicroOp(op=OpClass.BRANCH, pc=1, taken=bool(rng.random() < 0.5))
            )
            random_ops.append(alu())
        good = Core().run(trace_of(predictable))
        bad = Core().run(trace_of(random_ops))
        assert bad.ipc < 0.7 * good.ipc
        assert bad.branch_misprediction_rate > 0.3
