"""The Experiment protocol and registry."""

import pytest

from repro.errors import ConfigurationError
from repro.engine.registry import (
    Experiment,
    all_experiments,
    experiment_names,
    get_experiment,
    register_experiment,
)
from repro.experiments.runner import ExperimentContext

PAPER_ORDER = (
    "fig01_reuse",
    "fig04_retention_curve",
    "fig06_typical",
    "fig07_leakage",
    "fig08_line_retention",
    "fig09_schemes",
    "fig10_hundred_chips",
    "fig11_associativity",
    "fig12_sensitivity",
    "table3",
    # Extensions ride after the paper's own figures.
    "techcompare",
    "geomsweep",
)


def test_registry_holds_every_experiment_in_paper_order():
    assert experiment_names() == PAPER_ORDER


def test_unknown_experiment_raises():
    with pytest.raises(ConfigurationError):
        get_experiment("fig99_nonexistent")


def test_every_experiment_has_uniform_surface():
    for experiment in all_experiments():
        assert callable(experiment.run)
        assert callable(experiment.report)
        assert experiment.module is not None


def test_plot_shaped_experiments_export_csv():
    with_csv = {
        e.name for e in all_experiments() if e.csv_rows is not None
    }
    assert with_csv == {
        "fig01_reuse", "fig10_hundred_chips", "fig12_sensitivity",
        "techcompare", "geomsweep",
    }


def test_table3_overrides_halve_the_chip_count():
    table3 = get_experiment("table3")
    derived = table3.context_for(ExperimentContext(n_chips=60))
    assert derived.n_chips == 30
    # The floor keeps medians stable at tiny base scales.
    floored = table3.context_for(ExperimentContext(n_chips=4))
    assert floored.n_chips == 10
    # Everything else is inherited.
    assert derived.seed == ExperimentContext().seed


def test_context_for_defaults_to_identity():
    fig10 = get_experiment("fig10_hundred_chips")
    context = ExperimentContext(n_chips=7)
    assert fig10.context_for(context) is context


def test_register_requires_a_name():
    with pytest.raises(ConfigurationError):
        register_experiment(
            Experiment(name="", run=lambda c: None, report=lambda r: "")
        )


def test_csv_exports_empty_without_hook():
    experiment = Experiment(
        name="adhoc", run=lambda c: None, report=lambda r: ""
    )
    assert experiment.csv_exports(object()) == ()
