"""The process-pool scheduler: serial/parallel bit-identity."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.engine.config import EngineConfig
from repro.technology import NODE_32NM
from repro.variation import VariationParams
from repro.array import ChipSampler
from repro.engine.parallel import (
    EvalTask,
    EvaluatorSpec,
    ParallelChipRunner,
    run_eval_task,
)
from repro.experiments.runner import ExperimentContext
from repro.experiments import fig10_hundred_chips


class TestEvaluatorSpec:
    def test_build_matches_context_evaluator(self):
        context = ExperimentContext(n_chips=1, n_references=900, seed=4)
        spec = context.evaluator_spec()
        evaluator = spec.build()
        assert evaluator.node == NODE_32NM
        assert evaluator.n_references == 900
        assert evaluator.config.geometry.ways == 4

    def test_ways_flow_into_config(self):
        spec = EvaluatorSpec(node=NODE_32NM, ways=2, n_references=800)
        assert spec.build().config.geometry.ways == 2

    def test_invalid_ways_rejected(self):
        with pytest.raises(ConfigurationError):
            EvaluatorSpec(node=NODE_32NM, ways=0)


class TestEvalTaskValidation:
    def test_schemes_task_needs_chip(self):
        spec = EvaluatorSpec(node=NODE_32NM, n_references=800)
        with pytest.raises(ConfigurationError):
            EvalTask(evaluator=spec, schemes=("RSP-FIFO",))

    def test_unknown_kind_rejected(self):
        spec = EvaluatorSpec(node=NODE_32NM, n_references=800)
        with pytest.raises(ConfigurationError):
            EvalTask(evaluator=spec, kind="bogus")


class TestRunnerBasics:
    def test_workers_validated(self):
        with pytest.raises(ConfigurationError):
            ParallelChipRunner(EngineConfig(workers=0))

    def test_map_preserves_task_order(self):
        with ParallelChipRunner(EngineConfig(workers=2)) as runner:
            results = runner.map(abs, [-3, -1, -2, 0, 5])
        assert results == [3, 1, 2, 0, 5]

    def test_build_chips_matches_serial_sampling(self):
        serial = ChipSampler(
            NODE_32NM, VariationParams.severe(), seed=30
        ).sample_3t1d_chips(4)
        sampler = ChipSampler(NODE_32NM, VariationParams.severe(), seed=30)
        tasks = sampler.reserve_build_tasks(4, kind="3t1d")
        with ParallelChipRunner(EngineConfig(workers=2)) as runner:
            parallel = runner.build_chips(tasks)
        for a, b in zip(serial, parallel):
            assert a.chip_id == b.chip_id
            assert np.array_equal(a.retention_by_line, b.retention_by_line)
            assert a.leakage_power == b.leakage_power

    def test_discarded_chip_reduces_to_outcome(self):
        # The severe scenario reliably yields dead lines; the global
        # scheme must mark such a chip discarded instead of raising.
        chips = ChipSampler(
            NODE_32NM, VariationParams.severe(), seed=31
        ).sample_3t1d_chips(6)
        dead = [c for c in chips if c.is_discarded_under_global_scheme()]
        assert dead, "expected at least one discarded chip at severe"
        spec = EvaluatorSpec(node=NODE_32NM, n_references=600)
        (outcome,) = run_eval_task(
            EvalTask(evaluator=spec, chip=dead[0], schemes=("Global",))
        )
        assert outcome.discarded
        assert outcome.normalized_performance == 0.0


class TestSerialParallelIdentity:
    def test_fig10_parallel_matches_serial(self):
        serial_ctx = ExperimentContext(
            n_chips=4, n_references=1200, seed=6,
            engine=EngineConfig(workers=1),
        )
        parallel_ctx = ExperimentContext(
            n_chips=4, n_references=1200, seed=6,
            engine=EngineConfig(workers=4),
        )
        try:
            serial = fig10_hundred_chips.run(serial_ctx)
            parallel = fig10_hundred_chips.run(parallel_ctx)
        finally:
            serial_ctx.close()
            parallel_ctx.close()
        assert serial.chip_ids == parallel.chip_ids
        for scheme in serial.performance:
            assert np.array_equal(
                serial.performance[scheme], parallel.performance[scheme]
            )
            assert np.array_equal(
                serial.power[scheme], parallel.power[scheme]
            )


class TestEvaluatorCacheConfig:
    def test_default_size(self):
        from repro.engine.parallel import (
            DEFAULT_EVALUATOR_CACHE_SIZE,
            evaluator_cache_size,
        )

        assert DEFAULT_EVALUATOR_CACHE_SIZE >= 1
        assert evaluator_cache_size() >= 1

    def test_resize_evicts_lru(self):
        from repro.engine.parallel import (
            evaluator_cache_size,
            evaluator_for,
            set_evaluator_cache_size,
        )

        original = evaluator_cache_size()
        spec_a = EvaluatorSpec(node=NODE_32NM, n_references=601, seed=71)
        spec_b = EvaluatorSpec(node=NODE_32NM, n_references=602, seed=71)
        try:
            set_evaluator_cache_size(1)
            first = evaluator_for(spec_a)
            evaluator_for(spec_b)  # evicts spec_a
            assert evaluator_for(spec_a) is not first
        finally:
            set_evaluator_cache_size(original)

    def test_invalid_size_rejected(self):
        from repro.engine.parallel import set_evaluator_cache_size

        with pytest.raises(ConfigurationError):
            set_evaluator_cache_size(0)

    def test_runner_propagates_size_to_serial_path(self):
        from repro.engine.parallel import evaluator_cache_size

        original = evaluator_cache_size()
        try:
            runner = ParallelChipRunner(
                EngineConfig(workers=1, evaluator_cache_size=3)
            )
            assert runner.evaluator_cache_size == 3
            assert evaluator_cache_size() == 3
        finally:
            from repro.engine.parallel import set_evaluator_cache_size

            set_evaluator_cache_size(original)

    def test_context_field_reaches_runner(self):
        context = ExperimentContext(
            n_chips=1, n_references=600,
            engine=EngineConfig(workers=1, evaluator_cache_size=4),
        )
        from repro.engine.parallel import (
            evaluator_cache_size,
            set_evaluator_cache_size,
        )

        original = evaluator_cache_size()
        try:
            assert context.runner.evaluator_cache_size == 4
        finally:
            context.close()
            set_evaluator_cache_size(original)


class TestTraceReuse:
    def test_second_evaluation_regenerates_no_traces(self, monkeypatch):
        """A warm process-local evaluator never rebuilds its traces."""
        from repro.workloads.generator import SyntheticWorkload

        calls = {"memory_trace": 0}
        original = SyntheticWorkload.memory_trace

        def counting(self, *args, **kwargs):
            calls["memory_trace"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(SyntheticWorkload, "memory_trace", counting)
        # A seed no other test uses, so the process-local cache is cold.
        spec = EvaluatorSpec(node=NODE_32NM, n_references=700, seed=20207)
        chip = ChipSampler(
            NODE_32NM, VariationParams.typical(), seed=12
        ).sample_3t1d_chip()
        task = EvalTask(
            evaluator=spec, chip=chip, schemes=("no-refresh/LRU",)
        )
        run_eval_task(task)
        generated = calls["memory_trace"]
        assert generated > 0
        run_eval_task(task)
        run_eval_task(
            EvalTask(
                evaluator=spec, chip=chip, schemes=("partial-refresh/DSP",)
            )
        )
        assert calls["memory_trace"] == generated
