"""The process-pool scheduler: serial/parallel bit-identity."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.technology import NODE_32NM
from repro.variation import VariationParams
from repro.array import ChipSampler
from repro.engine.parallel import (
    EvalTask,
    EvaluatorSpec,
    ParallelChipRunner,
    run_eval_task,
)
from repro.experiments.runner import ExperimentContext
from repro.experiments import fig10_hundred_chips


class TestEvaluatorSpec:
    def test_build_matches_context_evaluator(self):
        context = ExperimentContext(n_chips=1, n_references=900, seed=4)
        spec = context.evaluator_spec()
        evaluator = spec.build()
        assert evaluator.node == NODE_32NM
        assert evaluator.n_references == 900
        assert evaluator.config.geometry.ways == 4

    def test_ways_flow_into_config(self):
        spec = EvaluatorSpec(node=NODE_32NM, ways=2, n_references=800)
        assert spec.build().config.geometry.ways == 2

    def test_invalid_ways_rejected(self):
        with pytest.raises(ConfigurationError):
            EvaluatorSpec(node=NODE_32NM, ways=0)


class TestEvalTaskValidation:
    def test_schemes_task_needs_chip(self):
        spec = EvaluatorSpec(node=NODE_32NM, n_references=800)
        with pytest.raises(ConfigurationError):
            EvalTask(evaluator=spec, schemes=("RSP-FIFO",))

    def test_unknown_kind_rejected(self):
        spec = EvaluatorSpec(node=NODE_32NM, n_references=800)
        with pytest.raises(ConfigurationError):
            EvalTask(evaluator=spec, kind="bogus")


class TestRunnerBasics:
    def test_workers_validated(self):
        with pytest.raises(ConfigurationError):
            ParallelChipRunner(workers=0)

    def test_map_preserves_task_order(self):
        with ParallelChipRunner(workers=2) as runner:
            results = runner.map(abs, [-3, -1, -2, 0, 5])
        assert results == [3, 1, 2, 0, 5]

    def test_build_chips_matches_serial_sampling(self):
        serial = ChipSampler(
            NODE_32NM, VariationParams.severe(), seed=30
        ).sample_3t1d_chips(4)
        sampler = ChipSampler(NODE_32NM, VariationParams.severe(), seed=30)
        tasks = sampler.reserve_build_tasks(4, kind="3t1d")
        with ParallelChipRunner(workers=2) as runner:
            parallel = runner.build_chips(tasks)
        for a, b in zip(serial, parallel):
            assert a.chip_id == b.chip_id
            assert np.array_equal(a.retention_by_line, b.retention_by_line)
            assert a.leakage_power == b.leakage_power

    def test_discarded_chip_reduces_to_outcome(self):
        # The severe scenario reliably yields dead lines; the global
        # scheme must mark such a chip discarded instead of raising.
        chips = ChipSampler(
            NODE_32NM, VariationParams.severe(), seed=31
        ).sample_3t1d_chips(6)
        dead = [c for c in chips if c.is_discarded_under_global_scheme()]
        assert dead, "expected at least one discarded chip at severe"
        spec = EvaluatorSpec(node=NODE_32NM, n_references=600)
        (outcome,) = run_eval_task(
            EvalTask(evaluator=spec, chip=dead[0], schemes=("Global",))
        )
        assert outcome.discarded
        assert outcome.normalized_performance == 0.0


class TestSerialParallelIdentity:
    def test_fig10_parallel_matches_serial(self):
        serial_ctx = ExperimentContext(
            n_chips=4, n_references=1200, seed=6, workers=1
        )
        parallel_ctx = ExperimentContext(
            n_chips=4, n_references=1200, seed=6, workers=4
        )
        try:
            serial = fig10_hundred_chips.run(serial_ctx)
            parallel = fig10_hundred_chips.run(parallel_ctx)
        finally:
            serial_ctx.close()
            parallel_ctx.close()
        assert serial.chip_ids == parallel.chip_ids
        for scheme in serial.performance:
            assert np.array_equal(
                serial.performance[scheme], parallel.performance[scheme]
            )
            assert np.array_equal(
                serial.power[scheme], parallel.power[scheme]
            )
