"""The typed event stream: dispatch, subscription, composition."""

import dataclasses

import pytest

from repro.engine.events import (
    BatchEnded,
    BatchStarted,
    ChipCompleted,
    EngineEvent,
    EventStream,
    ExperimentEnded,
    ExperimentStarted,
    RunCheckpointed,
    RunEnded,
    RunResumed,
    RunStarted,
    SpansCollected,
    TaskRetried,
    WorkerRespawned,
    dispatch,
)

ALL_EVENTS = [
    RunStarted(3),
    ExperimentStarted("fig10"),
    ExperimentEnded("fig10", 1.5, False),
    RunEnded(2.0),
    BatchStarted("eval", 10),
    ChipCompleted("eval", 1, 10),
    BatchEnded("eval", 10, 0.9),
    TaskRetried("eval", 4, 1, "ValueError"),
    WorkerRespawned("eval", 2),
    RunCheckpointed("eval", 7),
    RunResumed("eval", 3),
    SpansCollected("eval", (), 1234, 2048),
]


class Recorder:
    def __init__(self):
        self.events = []

    def handle(self, event):
        self.events.append(event)


class TestEventDataclasses:
    def test_every_event_is_a_frozen_engine_event(self):
        for event in ALL_EVENTS:
            assert isinstance(event, EngineEvent)
            assert dataclasses.is_dataclass(event)
            with pytest.raises(dataclasses.FrozenInstanceError):
                event.anything = 1

    def test_events_compare_by_value(self):
        assert ChipCompleted("b", 1, 2) == ChipCompleted("b", 1, 2)
        assert ChipCompleted("b", 1, 2) != ChipCompleted("b", 2, 2)


class TestDispatch:
    def test_prefers_handle_method(self):
        recorder = Recorder()
        dispatch(recorder, RunStarted(1))
        assert recorder.events == [RunStarted(1)]

    def test_falls_back_to_bare_callable(self):
        seen = []
        dispatch(seen.append, RunStarted(1))
        assert seen == [RunStarted(1)]


class TestEventStream:
    def test_emits_in_subscription_order(self):
        stream = EventStream()
        order = []
        stream.subscribe(lambda e: order.append("a"))
        stream.subscribe(lambda e: order.append("b"))
        stream.emit(RunStarted(1))
        assert order == ["a", "b"]

    def test_constructor_subscribers_and_property(self):
        a, b = Recorder(), Recorder()
        stream = EventStream([a])
        stream.subscribe(b)
        assert stream.subscribers == (a, b)

    def test_unsubscribe_is_idempotent(self):
        a = Recorder()
        stream = EventStream([a])
        stream.unsubscribe(a)
        stream.unsubscribe(a)  # absent: no error
        stream.emit(RunStarted(1))
        assert a.events == []

    def test_streams_compose_as_subscribers(self):
        inner_seen = Recorder()
        inner = EventStream([inner_seen])
        outer = EventStream([inner])
        outer.emit(ChipCompleted("b", 1, 1))
        assert inner_seen.events == [ChipCompleted("b", 1, 1)]

    def test_subscribe_returns_subscriber(self):
        stream = EventStream()
        recorder = Recorder()
        assert stream.subscribe(recorder) is recorder

    def test_all_events_flow_through(self):
        recorder = Recorder()
        stream = EventStream([recorder])
        for event in ALL_EVENTS:
            stream.emit(event)
        assert recorder.events == ALL_EVENTS
