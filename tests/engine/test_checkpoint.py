"""The write-ahead run journal: durability, torn tails, content keys."""

import hashlib
import pickle

from repro.engine.checkpoint import MAGIC, RunJournal, task_key


def _double(x):
    return 2 * x


def _triple(x):
    return 3 * x


class TestTaskKey:
    def test_stable_across_calls(self):
        assert task_key(_double, (1, 2.5, "a")) == task_key(_double, (1, 2.5, "a"))

    def test_distinguishes_payloads(self):
        assert task_key(_double, 1) != task_key(_double, 2)

    def test_distinguishes_functions(self):
        assert task_key(_double, 1) != task_key(_triple, 1)

    def test_identity_insensitive(self):
        # The same value appearing once vs. twice as the same object must
        # not change the key: a journal written by a fresh run has to hit
        # when the payload was rebuilt from restored (unpickled) parts.
        shared = (1.0, 2.0, 3.0)
        copied = pickle.loads(pickle.dumps(shared))
        assert shared == copied and shared is not copied
        assert task_key(_double, (shared, shared)) == task_key(
            _double, (shared, copied)
        )


class TestRunJournalRoundTrip:
    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "run.journal"
        with RunJournal(path) as journal:
            assert journal.record("k1", {"a": 1}) is True
            assert journal.record("k2", [1, 2, 3]) is True
            assert len(journal) == 2
            assert "k1" in journal
            assert journal.get("k1") == {"a": 1}
        with RunJournal(path, resume=True) as journal:
            assert journal.restored == 2
            assert journal.get("k2") == [1, 2, 3]

    def test_duplicate_record_is_noop(self, tmp_path):
        path = tmp_path / "run.journal"
        with RunJournal(path) as journal:
            assert journal.record("k", 1) is True
            assert journal.record("k", 2) is False
            assert journal.get("k") == 1
        size = path.stat().st_size
        with RunJournal(path, resume=True) as journal:
            assert journal.get("k") == 1
        assert path.stat().st_size == size

    def test_fresh_open_discards_existing(self, tmp_path):
        path = tmp_path / "run.journal"
        with RunJournal(path) as journal:
            journal.record("k", 1)
        with RunJournal(path, resume=False) as journal:
            assert len(journal) == 0
            assert journal.restored == 0

    def test_missing_key_default(self, tmp_path):
        with RunJournal(tmp_path / "run.journal") as journal:
            assert journal.get("absent") is None
            assert journal.get("absent", 7) == 7


class TestTornTailRecovery:
    def _journal_with(self, path, n):
        with RunJournal(path) as journal:
            for i in range(n):
                journal.record(f"k{i}", i * i)
        return path.stat().st_size

    def test_trailing_garbage_truncated(self, tmp_path):
        path = tmp_path / "run.journal"
        durable = self._journal_with(path, 3)
        with open(path, "ab") as handle:
            handle.write(b"\x99" * 11)  # a torn record: partial length
        with RunJournal(path, resume=True) as journal:
            assert journal.restored == 3
            journal.record("k3", 9)
        # The torn bytes were truncated away before the append.
        with RunJournal(path, resume=True) as journal:
            assert journal.restored == 4
            assert journal.get("k3") == 9
        assert path.stat().st_size > durable

    def test_corrupt_record_drops_suffix(self, tmp_path):
        path = tmp_path / "run.journal"
        self._journal_with(path, 1)
        first_end = path.stat().st_size
        self._journal_with_append(path, "k1", 1)
        self._journal_with_append(path, "k2", 4)
        data = bytearray(path.read_bytes())
        data[first_end + 30] ^= 0xFF  # flip a byte inside record 2
        path.write_bytes(bytes(data))
        with RunJournal(path, resume=True) as journal:
            # Record 1 survives; the corrupt record and everything after
            # it are dropped.
            assert journal.restored == 1
            assert journal.get("k0") == 0
        assert path.stat().st_size == first_end

    @staticmethod
    def _journal_with_append(path, key, value):
        with RunJournal(path, resume=True) as journal:
            journal.record(key, value)

    def test_non_journal_file_starts_over(self, tmp_path):
        path = tmp_path / "run.journal"
        path.write_bytes(b"not a journal at all")
        with RunJournal(path, resume=True) as journal:
            assert journal.restored == 0
            journal.record("k", 1)
        assert path.read_bytes().startswith(MAGIC)
        with RunJournal(path, resume=True) as journal:
            assert journal.restored == 1

    def test_oversized_length_treated_as_corruption(self, tmp_path):
        path = tmp_path / "run.journal"
        self._journal_with(path, 2)
        with open(path, "ab") as handle:
            handle.write((1 << 62).to_bytes(8, "little"))
            handle.write(b"\x00" * 16)
        with RunJournal(path, resume=True) as journal:
            assert journal.restored == 2


class TestPathFor:
    def test_stable_and_distinct(self, tmp_path):
        a = RunJournal.path_for(tmp_path, "chips=4|seed=1")
        b = RunJournal.path_for(tmp_path, "chips=4|seed=1")
        c = RunJournal.path_for(tmp_path, "chips=4|seed=2")
        assert a == b != c
        assert a.parent == tmp_path
        digest = hashlib.sha256(b"chips=4|seed=1").hexdigest()[:16]
        assert a.name == f"run-{digest}.journal"

    def test_creates_parent_directory(self, tmp_path):
        path = RunJournal.path_for(tmp_path / "deep" / "dir", "k")
        with RunJournal(path) as journal:
            journal.record("k", 1)
        assert path.exists()
