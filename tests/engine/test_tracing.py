"""Cross-process tracing: spans, Chrome export, fault runs, bit-identity."""

import json
import os

from repro.engine import trace as trace_mod
from repro.engine.config import EngineConfig
from repro.engine.events import (
    BatchEnded,
    BatchStarted,
    ExperimentEnded,
    ExperimentStarted,
    RunEnded,
    RunStarted,
    SpansCollected,
    TaskRetried,
)
from repro.engine.faults import FaultPlan
from repro.engine.parallel import ParallelChipRunner
from repro.engine.registry import get_experiment
from repro.engine.trace import (
    NULL_SPAN,
    Span,
    TracedResult,
    Tracer,
    activate,
    collect_task_spans,
    current_tracer,
    peak_rss_kb,
    span,
    tracing_active,
)


def _square(x):
    return x * x


def _traced_square(x):
    # Module-level so it crosses the process boundary by reference; the
    # span lands in the worker's per-task collector.
    with span("square", cat="task", x=x):
        return x * x


def drive_run(tracer):
    """One run / one experiment / one batch through the event surface."""
    tracer.handle(RunStarted(1))
    tracer.handle(ExperimentStarted("fig10_hundred_chips"))
    tracer.handle(BatchStarted("eval", 4))
    tracer.handle(BatchEnded("eval", 4, 0.2))
    tracer.handle(TaskRetried("eval", 2, 1, "ValueError"))
    tracer.handle(ExperimentEnded("fig10_hundred_chips", 0.3, False))
    tracer.handle(RunEnded(0.4))


class TestAmbientSpans:
    def test_span_is_noop_without_tracer(self):
        assert not tracing_active()
        assert current_tracer() is None
        assert span("anything") is NULL_SPAN
        with span("anything") as sp:
            sp.set(extra=1)  # must not raise

    def test_activate_records_into_tracer(self):
        tracer = Tracer()
        with activate(tracer):
            assert tracing_active() and current_tracer() is tracer
            with span("work", cat="kernel", chip_id=3) as sp:
                sp.set(hit=True)
        assert not tracing_active()
        (recorded,) = tracer.spans()
        assert recorded.name == "work"
        assert recorded.cat == "kernel"
        assert recorded.duration_ns >= 0
        assert recorded.pid == os.getpid()
        assert dict(recorded.args) == {"chip_id": 3, "hit": True}

    def test_activate_none_is_noop_context(self):
        with activate(None) as tracer:
            assert tracer is None
            assert not tracing_active()

    def test_activate_restores_previous_tracer(self):
        outer, inner = Tracer(), Tracer()
        with activate(outer):
            with activate(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer

    def test_collect_task_spans_isolates_and_exposes(self):
        outer = Tracer()
        with activate(outer):
            with collect_task_spans() as collected:
                with span("inner"):
                    pass
            assert current_tracer() is outer
        assert [s.name for s in collected.spans] == ["inner"]
        assert outer.spans() == ()

    def test_peak_rss_is_positive_on_posix(self):
        assert peak_rss_kb() > 0


class TestTracerEvents:
    def test_lifecycle_events_become_spans(self):
        tracer = Tracer()
        drive_run(tracer)
        by_cat = {}
        for s in tracer.spans():
            by_cat.setdefault(s.cat, []).append(s)
        assert [s.name for s in by_cat["run"]] == ["run"]
        assert [s.name for s in by_cat["experiment"]] == [
            "fig10_hundred_chips"
        ]
        assert [s.name for s in by_cat["batch"]] == ["eval"]
        (retry,) = tracer.instants()
        assert retry.name == "task_retried"

    def test_spans_collected_merges_worker_batch(self):
        tracer = Tracer()
        worker_span = Span("w", "task", 10, 5, pid=999, tid=1)
        tracer.handle(SpansCollected("eval", (worker_span,), 999, 4096))
        assert tracer.spans() == (worker_span,)
        table = tracer.phase_table()
        assert table["peak_rss_kb_by_pid"] == {"999": 4096}

    def test_unmatched_end_is_dropped(self):
        tracer = Tracer()
        tracer.handle(ExperimentEnded("never_started", 1.0, False))
        assert tracer.spans() == ()

    def test_phase_table_aggregates_and_covers(self):
        tracer = Tracer()
        drive_run(tracer)
        table = tracer.phase_table()
        assert set(table) == {
            "phases", "wall_clock_coverage", "peak_rss_kb_by_pid",
        }
        phases = table["phases"]
        assert phases["run"]["spans"] == 1
        assert phases["experiment"]["by_name"]["fig10_hundred_chips"][
            "spans"
        ] == 1
        # The experiment span covers nearly the whole run span.
        assert 0.0 < table["wall_clock_coverage"] <= 1.0


class TestChromeExport:
    def test_trace_file_is_chrome_loadable(self, tmp_path):
        tracer = Tracer()
        drive_run(tracer)
        tracer.handle(SpansCollected("eval", (), 4321, 2048))
        path = tracer.to_chrome(tmp_path / "trace.json")
        document = json.loads(path.read_text())
        assert set(document) >= {"traceEvents", "displayTimeUnit"}
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert events, "trace must not be empty"
        for event in events:
            assert {"name", "ph", "ts", "pid"} <= set(event)
            assert event["ph"] in {"X", "i", "C"}
            assert event["ts"] >= 0.0
            assert isinstance(event["args"], dict)
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
                assert "cat" in event
            if event["ph"] == "i":
                assert event["s"] == "g"
        counters = [e for e in events if e["ph"] == "C"]
        assert {"name": "peak_rss", "ph": "C", "ts": 0.0, "pid": 4321,
                "tid": 0, "args": {"rss_kb": 2048}} in counters

    def test_timestamps_are_relative_to_earliest(self, tmp_path):
        tracer = Tracer()
        drive_run(tracer)
        events = tracer.chrome_events()
        assert min(e["ts"] for e in events) == 0.0


class TestWorkerSpanCollection:
    def test_worker_spans_ship_home_and_nest_in_batch(self):
        tracer = Tracer()
        config = EngineConfig(workers=2, retry_backoff_s=0.001)
        with activate(tracer):
            with ParallelChipRunner(config=config) as runner:
                results = runner.map(
                    _traced_square, [1, 2, 3, 4],
                    observer=tracer, label="traced",
                )
        assert results == [1, 4, 9, 16]
        task_spans = [s for s in tracer.spans() if s.name == "square"]
        assert len(task_spans) == 4
        (batch,) = [s for s in tracer.spans() if s.cat == "batch"]
        supervisor_pid = os.getpid()
        for s in task_spans:
            assert s.pid != supervisor_pid
            # CLOCK_MONOTONIC is system-wide on Linux, so worker spans
            # nest inside the supervisor's batch span.
            assert batch.start_ns <= s.start_ns
            assert s.end_ns <= batch.end_ns
        # Worker peak RSS arrived with the span batches.
        assert tracer.phase_table()["peak_rss_kb_by_pid"]

    def test_span_nesting_survives_worker_crash_and_retry(self):
        tracer = Tracer()
        plan = FaultPlan(seed=3, crash_rate=1.0, max_faults_per_task=1)
        config = EngineConfig(
            workers=2, fault_plan=plan, max_retries=3,
            retry_backoff_s=0.001,
        )
        with activate(tracer):
            with ParallelChipRunner(config=config) as runner:
                results = runner.map(
                    _traced_square, [1, 2, 3],
                    observer=tracer, label="faulty",
                )
        assert results == [1, 4, 9]
        (batch,) = [s for s in tracer.spans() if s.cat == "batch"]
        task_spans = [s for s in tracer.spans() if s.name == "square"]
        # Every surviving attempt recorded a span nested in the batch.
        assert len(task_spans) >= 3
        for s in task_spans:
            assert batch.start_ns <= s.start_ns
            assert s.end_ns <= batch.end_ns
        # The crash/retry churn shows up as instants, not as spans.
        instant_names = {i.name for i in tracer.instants()}
        assert "task_retried" in instant_names or (
            "worker_respawned" in instant_names
        )

    def test_untraced_runs_collect_nothing(self):
        config = EngineConfig(workers=2, retry_backoff_s=0.001)
        collected = []
        with ParallelChipRunner(config=config) as runner:
            runner.map(
                _traced_square, [1, 2],
                observer=collected.append, label="plain",
            )
        assert not any(
            isinstance(e, SpansCollected) for e in collected
        )

    def test_traced_result_never_reaches_caller(self):
        tracer = Tracer()
        config = EngineConfig(workers=2, retry_backoff_s=0.001)
        with activate(tracer):
            with ParallelChipRunner(config=config) as runner:
                results = runner.map(_square, [5], observer=tracer)
        assert not any(isinstance(r, TracedResult) for r in results)
        assert results == [25]


class TestBitIdentity:
    """Tracing is observational: traced and untraced outputs match."""

    def _run(self, name, traced):
        from repro.experiments.runner import ExperimentContext

        experiment = get_experiment(name)
        context = ExperimentContext(n_chips=2, n_references=800, seed=21)
        tracer = Tracer() if traced else None
        with activate(tracer):
            result, _ = experiment.execute(context, None)
        report = experiment.report(result)
        exports = {
            export.filename: (export.headers, export.rows)
            for export in experiment.csv_exports(result)
        }
        if traced:
            assert tracer.spans(), "traced run must record spans"
        return report, exports

    def test_fig10_identical_with_and_without_tracing(self):
        baseline = self._run("fig10_hundred_chips", traced=False)
        traced = self._run("fig10_hundred_chips", traced=True)
        assert traced == baseline

    def test_table3_identical_with_and_without_tracing(self):
        baseline = self._run("table3", traced=False)
        traced = self._run("table3", traced=True)
        assert traced == baseline
