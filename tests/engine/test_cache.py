"""The on-disk content-keyed result cache."""

from repro.engine.cache import ResultCache, source_digest
from repro.engine.registry import get_experiment
from repro.experiments.runner import ExperimentContext


def test_put_get_roundtrip(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("k1", {"value": [1, 2, 3]})
    assert cache.get("k1") == {"value": [1, 2, 3]}
    assert cache.get("missing") is None


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("k1", 42)
    cache.path_for("k1").write_bytes(b"not a pickle")
    assert cache.get("k1") is None


def test_clear_removes_entries(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.clear() == 2
    assert cache.get("a") is None


def test_key_tracks_context_fingerprint(tmp_path):
    cache = ResultCache(tmp_path)
    experiment = get_experiment("fig10_hundred_chips")
    base = ExperimentContext(n_chips=4, n_references=900, seed=3)
    assert cache.key_for(experiment, base) == cache.key_for(experiment, base)
    for other in (
        base.with_chips(5),
        base.with_refs(1000),
        base.with_overrides(seed=4),
    ):
        assert cache.key_for(experiment, other) != cache.key_for(experiment, base)
    # Worker count never changes results, so it never changes the key.
    same_results = base.with_overrides(engine=base.engine.replace(workers=4))
    assert cache.key_for(experiment, same_results) == cache.key_for(
        experiment, base
    )


def test_key_differs_across_experiments(tmp_path):
    cache = ResultCache(tmp_path)
    context = ExperimentContext(n_chips=4, n_references=900, seed=3)
    keys = {
        cache.key_for(get_experiment(name), context)
        for name in ("fig09_schemes", "fig10_hundred_chips", "table3")
    }
    assert len(keys) == 3


def test_source_digest_stable_and_missing_module_safe():
    digest = source_digest("repro.experiments.fig10_hundred_chips")
    assert digest and digest == source_digest(
        "repro.experiments.fig10_hundred_chips"
    )
    assert source_digest("repro.no_such_module") == ""


# ----------------------------------------------------------------------
# the sharded fleet-wide variant
# ----------------------------------------------------------------------


def test_sharded_cache_spreads_entries_by_key_prefix(tmp_path):
    from repro.engine.cache import ShardedResultCache

    cache = ShardedResultCache(tmp_path, shard_prefix_len=1)
    cache.put("aa11", 1)
    cache.put("ab22", 2)
    cache.put("ba33", 3)
    assert cache.path_for("aa11").parent == tmp_path / "shard-a"
    assert cache.path_for("ba33").parent == tmp_path / "shard-b"
    assert sorted(p.name for p in tmp_path.glob("shard-*") if p.is_dir()) == [
        "shard-a", "shard-b",
    ]
    assert (cache.get("aa11"), cache.get("ab22"), cache.get("ba33")) == (
        1, 2, 3,
    )


def test_sharded_cache_has_the_resultcache_interface(tmp_path):
    from repro.engine.cache import ShardedResultCache

    cache = ShardedResultCache(tmp_path)
    assert isinstance(cache, ResultCache)
    cache.put("k1" * 8, {"value": [1, 2, 3]})
    assert cache.get("k1" * 8) == {"value": [1, 2, 3]}
    assert cache.get("0" * 16) is None
    cache.path_for("k1" * 8).write_bytes(b"not a pickle")
    assert cache.get("k1" * 8) is None  # corrupt entry is a miss


def test_sharded_cache_counts_hits_misses_puts(tmp_path):
    from repro.engine.cache import ShardedResultCache

    cache = ShardedResultCache(tmp_path)
    cache.put("aa", 1)
    cache.get("aa")
    cache.get("aa")
    cache.get("zz")
    assert cache.stats.as_dict() == {"hits": 2, "misses": 1, "puts": 1}


def test_sharded_cache_clear_sweeps_every_shard(tmp_path):
    from repro.engine.cache import ShardedResultCache

    cache = ShardedResultCache(tmp_path, shard_prefix_len=1)
    for key in ("a1", "b2", "c3", "a4"):
        cache.put(key, key)
    assert cache.clear() == 4
    assert all(cache.get(key) is None for key in ("a1", "b2", "c3", "a4"))


def test_sharded_cache_prefix_len_validated(tmp_path):
    from repro.engine.cache import ShardedResultCache
    from repro.errors import ConfigurationError
    import pytest

    for bad in (0, 9):
        with pytest.raises(ConfigurationError, match="shard_prefix_len"):
            ShardedResultCache(tmp_path, shard_prefix_len=bad)


def test_sharded_cache_shared_across_instances(tmp_path):
    # Two independent instances over one directory (the multi-process
    # service picture) see each other's entries immediately.
    from repro.engine.cache import ShardedResultCache

    writer = ShardedResultCache(tmp_path)
    reader = ShardedResultCache(tmp_path)
    writer.put("feed" * 4, {"chips": 60})
    assert reader.get("feed" * 4) == {"chips": 60}
    assert reader.stats.hits == 1


def test_sharded_cache_degrades_without_fcntl(tmp_path, monkeypatch):
    # Non-POSIX platforms have no flock; atomic renames alone must keep
    # the cache usable.
    from repro.engine import cache as cache_mod

    monkeypatch.setattr(cache_mod, "fcntl", None)
    cache = cache_mod.ShardedResultCache(tmp_path)
    cache.put("aa", 7)
    assert cache.get("aa") == 7
    assert cache.clear() == 1


def test_sharded_cache_key_for_matches_flat_cache(tmp_path):
    # Sharding changes layout, never identity: both variants compute the
    # same content key, so a sweep can move between them freely.
    from repro.engine.cache import ShardedResultCache

    experiment = get_experiment("fig10_hundred_chips")
    context = ExperimentContext(n_chips=4, n_references=900, seed=3)
    flat = ResultCache(tmp_path / "flat")
    sharded = ShardedResultCache(tmp_path / "sharded")
    assert flat.key_for(experiment, context) == sharded.key_for(
        experiment, context
    )
