"""The on-disk content-keyed result cache."""

from repro.engine.cache import ResultCache, source_digest
from repro.engine.registry import get_experiment
from repro.experiments.runner import ExperimentContext


def test_put_get_roundtrip(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("k1", {"value": [1, 2, 3]})
    assert cache.get("k1") == {"value": [1, 2, 3]}
    assert cache.get("missing") is None


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("k1", 42)
    cache.path_for("k1").write_bytes(b"not a pickle")
    assert cache.get("k1") is None


def test_clear_removes_entries(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.clear() == 2
    assert cache.get("a") is None


def test_key_tracks_context_fingerprint(tmp_path):
    cache = ResultCache(tmp_path)
    experiment = get_experiment("fig10_hundred_chips")
    base = ExperimentContext(n_chips=4, n_references=900, seed=3)
    assert cache.key_for(experiment, base) == cache.key_for(experiment, base)
    for other in (
        base.with_chips(5),
        base.with_refs(1000),
        base.with_overrides(seed=4),
    ):
        assert cache.key_for(experiment, other) != cache.key_for(experiment, base)
    # Worker count never changes results, so it never changes the key.
    same_results = base.with_overrides(engine=base.engine.replace(workers=4))
    assert cache.key_for(experiment, same_results) == cache.key_for(
        experiment, base
    )


def test_key_differs_across_experiments(tmp_path):
    cache = ResultCache(tmp_path)
    context = ExperimentContext(n_chips=4, n_references=900, seed=3)
    keys = {
        cache.key_for(get_experiment(name), context)
        for name in ("fig09_schemes", "fig10_hundred_chips", "table3")
    }
    assert len(keys) == 3


def test_source_digest_stable_and_missing_module_safe():
    digest = source_digest("repro.experiments.fig10_hundred_chips")
    assert digest and digest == source_digest(
        "repro.experiments.fig10_hundred_chips"
    )
    assert source_digest("repro.no_such_module") == ""
