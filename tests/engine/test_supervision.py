"""Worker supervision: retries, quarantine, respawn, degradation, resume."""

import os

import pytest

from repro.errors import ConfigurationError, ExecutionError
from repro.engine.checkpoint import RunJournal, task_key
from repro.engine.config import EngineConfig
from repro.engine.events import (
    RunCheckpointed,
    RunResumed,
    TaskRetried,
    WorkerRespawned,
)
from repro.engine.faults import FaultPlan
from repro.engine.observer import RunObserver
from repro.engine.parallel import ParallelChipRunner

# Module-level task functions so they cross the process boundary by
# reference (the linter's WS002 rule applies to the engine itself; tests
# follow the same discipline).


def _square(x):
    return x * x


def _fail_if_negative(x):
    if x < 0:
        raise ValueError(f"bad task {x}")
    return x


def _fail_in_workers(task):
    main_pid, value = task
    if os.getpid() != main_pid:
        raise ValueError("poisoned in worker")
    return value


_CALLS = {"count": 0}


def _counted(x):
    _CALLS["count"] += 1
    return x + 100


class _EventLog(RunObserver):
    def __init__(self):
        self.retried = []
        self.respawned = []
        self.checkpointed = []
        self.resumed = []

    def handle(self, event):
        if isinstance(event, TaskRetried):
            self.retried.append((event.label, event.index, event.attempt))
        elif isinstance(event, WorkerRespawned):
            self.respawned.append((event.label, event.pool_failures))
        elif isinstance(event, RunCheckpointed):
            self.checkpointed.append((event.label, event.flushed))
        elif isinstance(event, RunResumed):
            self.resumed.append((event.label, event.restored))


def _fast_config(**overrides):
    base = dict(workers=1, retry_backoff_s=0.001)
    base.update(overrides)
    return EngineConfig(**base)


class TestSerialSupervision:
    def test_retry_exhaustion_raises_execution_error(self):
        with ParallelChipRunner(config=_fast_config(max_retries=2)) as runner:
            with pytest.raises(ExecutionError) as excinfo:
                runner.map(_fail_if_negative, [1, -1, 2])
            assert isinstance(excinfo.value.__cause__, ValueError)
            assert runner.stats.task_retries == 2

    def test_injected_errors_retried_to_success(self):
        plan = FaultPlan(seed=5, error_rate=1.0, max_faults_per_task=1)
        observer = _EventLog()
        config = _fast_config(max_retries=2, fault_plan=plan)
        with ParallelChipRunner(config=config) as runner:
            results = runner.map(
                _square, [2, 3, 4], observer=observer, label="faulty"
            )
        assert results == [4, 9, 16]
        assert runner.stats.task_retries == 3
        assert [entry[1] for entry in observer.retried] == [0, 1, 2]

    def test_injected_corruption_retried_to_success(self):
        plan = FaultPlan(seed=5, corrupt_rate=1.0, max_faults_per_task=1)
        config = _fast_config(max_retries=2, fault_plan=plan)
        with ParallelChipRunner(config=config) as runner:
            assert runner.map(_square, [2, 3]) == [4, 9]
        assert runner.stats.task_retries == 2

    def test_zero_retry_budget_fails_fast(self):
        plan = FaultPlan(seed=5, error_rate=1.0, max_faults_per_task=1)
        config = _fast_config(max_retries=0, fault_plan=plan)
        with ParallelChipRunner(config=config) as runner:
            with pytest.raises(ExecutionError):
                runner.map(_square, [2])


class TestPoolSupervision:
    def test_crash_injection_respawns_and_completes(self):
        plan = FaultPlan(seed=3, crash_rate=1.0, max_faults_per_task=1)
        observer = _EventLog()
        config = _fast_config(workers=2, fault_plan=plan, max_retries=3)
        with ParallelChipRunner(config=config) as runner:
            results = runner.map(
                _square, [5, 6, 7], observer=observer, label="crashy"
            )
        assert results == [25, 36, 49]
        assert runner.stats.worker_respawns >= 1
        assert observer.respawned
        assert not runner.degraded

    def test_hang_trips_timeout_and_recovers(self):
        plan = FaultPlan(
            seed=3, hang_rate=1.0, hang_s=30.0, max_faults_per_task=1
        )
        config = _fast_config(
            workers=2, fault_plan=plan, task_timeout=0.4, max_retries=2
        )
        with ParallelChipRunner(config=config) as runner:
            assert runner.map(_square, [2, 3]) == [4, 9]
            assert runner.stats.task_retries >= 1
            assert runner.pool_failures >= 1

    def test_poison_task_quarantined_then_finished_inline(self):
        tasks = [(os.getpid(), 1), (os.getpid(), 2), (os.getpid(), 3)]
        config = _fast_config(workers=2, max_retries=1)
        with ParallelChipRunner(config=config) as runner:
            results = runner.map(_fail_in_workers, tasks)
        # Every task fails in the pool, exhausts its pool retry budget,
        # and is quarantined -- then finishes inline in the main process.
        assert results == [1, 2, 3]
        assert runner.stats.tasks_quarantined == 3

    def test_repeated_pool_failures_degrade_to_serial(self):
        plan = FaultPlan(seed=9, crash_rate=1.0, max_faults_per_task=1)
        config = _fast_config(
            workers=2, fault_plan=plan, max_pool_failures=1, max_retries=2
        )
        with ParallelChipRunner(config=config) as runner:
            results = runner.map(_square, [4, 5, 6])
            assert results == [16, 25, 36]
            assert runner.degraded
            # A degraded runner never goes back to the pool.
            assert runner.map(_square, [7, 8]) == [49, 64]
        assert runner.stats.worker_respawns == 1

    def test_fault_injected_run_matches_fault_free(self):
        plan = FaultPlan(
            seed=13, crash_rate=0.2, error_rate=0.2, corrupt_rate=0.2,
            max_faults_per_task=1,
        )
        tasks = list(range(12))
        with ParallelChipRunner(config=_fast_config(workers=2)) as clean:
            expected = clean.map(_square, tasks)
        config = _fast_config(workers=2, fault_plan=plan, max_retries=3)
        with ParallelChipRunner(config=config) as faulty:
            assert faulty.map(_square, tasks) == expected


class TestCheckpointAndResume:
    def test_results_flushed_and_restored_without_recompute(self, tmp_path):
        observer = _EventLog()
        config = _fast_config(checkpoint_dir=tmp_path)
        _CALLS["count"] = 0
        with ParallelChipRunner(config=config, run_key="run") as runner:
            first = runner.map(_counted, [1, 2, 3], observer=observer)
        assert _CALLS["count"] == 3
        assert runner.stats.results_checkpointed == 3
        assert observer.checkpointed == [("batch", 3)]

        resumed_config = config.replace(resume=True)
        with ParallelChipRunner(
            config=resumed_config, run_key="run"
        ) as runner:
            second = runner.map(_counted, [1, 2, 3], observer=observer)
        assert second == first
        assert _CALLS["count"] == 3  # nothing recomputed
        assert runner.stats.results_resumed == 3
        assert observer.resumed == [("batch", 3)]

    def test_partial_journal_resumes_missing_only(self, tmp_path):
        path = RunJournal.path_for(tmp_path, "run")
        with RunJournal(path) as journal:
            journal.record(task_key(_counted, 1), 101)
            journal.record(task_key(_counted, 3), 103)
        _CALLS["count"] = 0
        config = _fast_config(checkpoint_dir=tmp_path, resume=True)
        with ParallelChipRunner(config=config, run_key="run") as runner:
            results = runner.map(_counted, [1, 2, 3])
        assert results == [101, 102, 103]
        assert _CALLS["count"] == 1  # only the missing middle task ran
        assert runner.stats.results_resumed == 2
        assert runner.stats.results_checkpointed == 1

    def test_changed_payload_misses_journal(self, tmp_path):
        config = _fast_config(checkpoint_dir=tmp_path)
        with ParallelChipRunner(config=config, run_key="run") as runner:
            runner.map(_square, [1, 2])
        resumed = config.replace(resume=True)
        with ParallelChipRunner(config=resumed, run_key="run") as runner:
            assert runner.map(_square, [1, 9]) == [1, 81]
            assert runner.stats.results_resumed == 1

    def test_distinct_run_keys_use_distinct_journals(self, tmp_path):
        config = _fast_config(checkpoint_dir=tmp_path)
        with ParallelChipRunner(config=config, run_key="a") as runner:
            runner.map(_square, [1])
        resumed = config.replace(resume=True)
        with ParallelChipRunner(config=resumed, run_key="b") as runner:
            runner.map(_square, [1])
            assert runner.stats.results_resumed == 0
        assert len(list(tmp_path.glob("run-*.journal"))) == 2

    def test_close_reopens_in_resume_mode(self, tmp_path):
        config = _fast_config(checkpoint_dir=tmp_path)
        runner = ParallelChipRunner(config=config, run_key="run")
        try:
            runner.map(_square, [1, 2])
            runner.close()
            # A later batch through the same runner keeps flushed entries.
            runner.map(_square, [1, 2])
            assert runner.stats.results_resumed == 2
        finally:
            runner.close()

    def test_no_checkpoint_dir_means_no_journal(self, tmp_path):
        with ParallelChipRunner(config=_fast_config()) as runner:
            runner.map(_square, [1, 2])
        assert runner.stats.results_checkpointed == 0
        assert list(tmp_path.iterdir()) == []


class TestRunnerConfigSurface:
    def test_positional_engine_config(self):
        config = EngineConfig(workers=2)
        runner = ParallelChipRunner(config)
        assert runner.workers == 2
        runner.close()

    def test_config_both_positional_and_keyword_rejected(self):
        config = EngineConfig(workers=2)
        with pytest.raises(TypeError):
            ParallelChipRunner(config, config=config)

    def test_legacy_keywords_removed(self):
        with pytest.raises(TypeError):
            ParallelChipRunner(workers=2)
        with pytest.raises(TypeError):
            ParallelChipRunner(evaluator_cache_size=3)

    def test_keyword_config_accepted(self):
        runner = ParallelChipRunner(config=EngineConfig(workers=3))
        assert runner.config.workers == 3
        assert runner.workers == 3
        runner.close()
