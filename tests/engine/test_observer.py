"""Progress/timing consumers of the typed event stream."""

import io
import json
import warnings

import pytest

from repro.errors import ConfigurationError
from repro.engine.events import (
    BatchEnded,
    BatchStarted,
    ChipCompleted,
    EngineEvent,
    ExperimentEnded,
    ExperimentStarted,
    RunEnded,
    RunStarted,
    TaskRetried,
)
from repro.engine.observer import (
    CLIProgressReporter,
    CompositeObserver,
    JSONMetricsObserver,
    NULL_OBSERVER,
    RunObserver,
)


def drive(observer) -> None:
    """Send one complete run's worth of typed events."""
    observer.handle(RunStarted(1))
    observer.handle(ExperimentStarted("fig10"))
    observer.handle(BatchStarted("eval", 8))
    for i in range(1, 9):
        observer.handle(ChipCompleted("eval", i, 8))
    observer.handle(BatchEnded("eval", 8, 0.5))
    observer.handle(ExperimentEnded("fig10", 0.6, False))
    observer.handle(RunEnded(0.7))


def test_null_observer_ignores_everything():
    drive(NULL_OBSERVER)  # must not raise


def test_cli_reporter_throttles_chip_lines():
    stream = io.StringIO()
    drive(CLIProgressReporter(stream=stream, updates_per_batch=4))
    lines = stream.getvalue().splitlines()
    chip_lines = [line for line in lines if "[eval]" in line]
    assert len(chip_lines) == 4
    assert "fig10: done in 0.6s" in stream.getvalue()


def test_cli_reporter_marks_cached_experiments():
    stream = io.StringIO()
    reporter = CLIProgressReporter(stream=stream)
    reporter.handle(ExperimentEnded("fig09", 0.0, True))
    assert "(cached)" in stream.getvalue()


def test_json_metrics_written_at_run_end(tmp_path):
    path = tmp_path / "metrics.json"
    observer = JSONMetricsObserver(path)
    drive(observer)
    record = json.loads(path.read_text())
    assert record["total_elapsed_s"] == 0.7
    (experiment,) = record["experiments"]
    assert experiment["name"] == "fig10"
    assert experiment["cached"] is False
    (batch,) = experiment["batches"]
    assert batch == {"label": "eval", "items": 8, "elapsed_s": 0.5}
    assert "trace_phases" not in record


def test_json_metrics_includes_phase_table_with_tracer(tmp_path):
    from repro.engine.trace import Tracer

    path = tmp_path / "metrics.json"
    tracer = Tracer()
    observer = JSONMetricsObserver(path, tracer=tracer)
    tracer.handle(RunStarted(1))
    drive(observer)
    tracer.handle(RunEnded(0.7))
    # The metrics file was written at RunEnded with whatever the tracer
    # had at that moment; the in-memory record carries the table.
    assert "trace_phases" in observer.metrics
    assert "phases" in observer.metrics["trace_phases"]


def test_json_metrics_counts_robustness_events(tmp_path):
    observer = JSONMetricsObserver(tmp_path / "m.json")
    observer.handle(RunStarted(1))
    observer.handle(TaskRetried("eval", 3, 1, "boom"))
    observer.handle(TaskRetried("eval", 3, 2, "boom"))
    observer.handle(RunEnded(0.1))
    assert observer.metrics["robustness"]["task_retries"] == 2


def test_composite_fans_out_in_order():
    class Recorder:
        def __init__(self):
            self.events = []

        def handle(self, event):
            self.events.append(event)

    first, second = Recorder(), Recorder()
    composite = CompositeObserver([first, second])
    composite.handle(ExperimentStarted("fig06"))
    composite.handle(ExperimentEnded("fig06", 1.0, True))
    expected = [
        ExperimentStarted("fig06"),
        ExperimentEnded("fig06", 1.0, True),
    ]
    assert first.events == expected
    assert second.events == expected
    assert composite.observers == (first, second)


# ----------------------------------------------------------------------
# removed legacy surface
# ----------------------------------------------------------------------


class TestLegacySurfaceRemoved:
    def test_defining_on_star_callback_is_a_hard_error(self):
        with pytest.raises(ConfigurationError, match="on_experiment_start"):
            class Stale(RunObserver):
                def on_experiment_start(self, name):
                    pass

    def test_error_names_every_stale_callback(self):
        with pytest.raises(
            ConfigurationError, match="on_chip_done, on_run_end"
        ):
            class Stale(RunObserver):
                def on_chip_done(self, label, completed, total):
                    pass

                def on_run_end(self, elapsed):
                    pass

    def test_builtins_expose_no_emitter_shims(self):
        reporter = CLIProgressReporter(stream=io.StringIO())
        for consumer in (reporter, JSONMetricsObserver(), NULL_OBSERVER):
            assert not hasattr(consumer, "on_experiment_end")
            assert not hasattr(consumer, "on_chip_done")

    def test_base_handle_ignores_unknown_events(self):
        class Newer(EngineEvent):
            pass

        RunObserver().handle(Newer())  # must not raise

    def test_typed_subscribers_emit_no_deprecation_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            stream = io.StringIO()
            drive(CLIProgressReporter(stream=stream))
            drive(JSONMetricsObserver())
            drive(NULL_OBSERVER)
