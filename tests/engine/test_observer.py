"""Progress/timing observers."""

import io
import json

from repro.engine.observer import (
    CLIProgressReporter,
    CompositeObserver,
    JSONMetricsObserver,
    NULL_OBSERVER,
    RunObserver,
)


def drive(observer: RunObserver) -> None:
    """Send one complete run's worth of events."""
    observer.on_run_start(1)
    observer.on_experiment_start("fig10")
    observer.on_batch_start("eval", 8)
    for i in range(1, 9):
        observer.on_chip_done("eval", i, 8)
    observer.on_batch_end("eval", 8, 0.5)
    observer.on_experiment_end("fig10", 0.6, False)
    observer.on_run_end(0.7)


def test_null_observer_ignores_everything():
    drive(NULL_OBSERVER)  # must not raise


def test_cli_reporter_throttles_chip_lines():
    stream = io.StringIO()
    drive(CLIProgressReporter(stream=stream, updates_per_batch=4))
    lines = stream.getvalue().splitlines()
    chip_lines = [line for line in lines if "[eval]" in line]
    assert len(chip_lines) == 4
    assert "fig10: done in 0.6s" in stream.getvalue()


def test_cli_reporter_marks_cached_experiments():
    stream = io.StringIO()
    reporter = CLIProgressReporter(stream=stream)
    reporter.on_experiment_end("fig09", 0.0, True)
    assert "(cached)" in stream.getvalue()


def test_json_metrics_written_at_run_end(tmp_path):
    path = tmp_path / "metrics.json"
    observer = JSONMetricsObserver(path)
    drive(observer)
    record = json.loads(path.read_text())
    assert record["total_elapsed_s"] == 0.7
    (experiment,) = record["experiments"]
    assert experiment["name"] == "fig10"
    assert experiment["cached"] is False
    (batch,) = experiment["batches"]
    assert batch == {"label": "eval", "items": 8, "elapsed_s": 0.5}


def test_composite_fans_out_in_order():
    class Recorder(RunObserver):
        def __init__(self):
            self.events = []

        def on_experiment_start(self, name):
            self.events.append(("start", name))

        def on_experiment_end(self, name, elapsed, cached):
            self.events.append(("end", name, cached))

    first, second = Recorder(), Recorder()
    composite = CompositeObserver([first, second])
    composite.on_experiment_start("fig06")
    composite.on_experiment_end("fig06", 1.0, True)
    expected = [("start", "fig06"), ("end", "fig06", True)]
    assert first.events == expected
    assert second.events == expected
