"""Seeded fault injection: determinism, spec parsing, validation."""

import pytest

from repro.errors import ConfigurationError
from repro.engine.faults import (
    CRASH_EXIT_CODE,
    CorruptedPayload,
    FAULT_KINDS,
    FaultPlan,
    InjectedFaultError,
)


class TestDeterminism:
    def test_decision_is_pure(self):
        plan_a = FaultPlan(seed=7, crash_rate=0.3, error_rate=0.3)
        plan_b = FaultPlan(seed=7, crash_rate=0.3, error_rate=0.3)
        keys = [f"key-{i}" for i in range(50)]
        for key in keys:
            for attempt in range(3):
                assert plan_a.decision(key, attempt) == plan_b.decision(
                    key, attempt
                )

    def test_seed_changes_pattern(self):
        keys = [f"key-{i}" for i in range(200)]
        a = [FaultPlan(seed=1, crash_rate=0.5).decision(k, 0) for k in keys]
        b = [FaultPlan(seed=2, crash_rate=0.5).decision(k, 0) for k in keys]
        assert a != b

    def test_rates_approximately_respected(self):
        plan = FaultPlan(seed=3, crash_rate=0.25, error_rate=0.25)
        kinds = [plan.decision(f"key-{i}", 0) for i in range(800)]
        faulted = sum(1 for kind in kinds if kind is not None)
        assert 0.4 < faulted / len(kinds) < 0.6
        assert set(kinds) <= {None, "crash", "error"}

    def test_max_faults_per_task_bounds_attempts(self):
        plan = FaultPlan(seed=0, error_rate=1.0, max_faults_per_task=2)
        key = "always-faulted"
        assert plan.decision(key, 0) == "error"
        assert plan.decision(key, 1) == "error"
        assert plan.decision(key, 2) is None
        assert plan.decision(key, 99) is None

    def test_draw_uniform_range(self):
        plan = FaultPlan(seed=11)
        draws = [plan.draw(f"k{i}", 0) for i in range(100)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert len(set(draws)) > 90  # not degenerate


class TestApply:
    def test_error_fault_raises(self):
        plan = FaultPlan(seed=0, error_rate=1.0)
        with pytest.raises(InjectedFaultError):
            plan.apply("k", 0, hard=False)

    def test_soft_crash_raises_instead_of_exiting(self):
        plan = FaultPlan(seed=0, crash_rate=1.0)
        with pytest.raises(InjectedFaultError):
            plan.apply("k", 0, hard=False)

    def test_corrupt_is_returned_to_caller(self):
        plan = FaultPlan(seed=0, corrupt_rate=1.0)
        assert plan.apply("k", 0, hard=False) == "corrupt"

    def test_hang_sleeps_then_reports(self):
        plan = FaultPlan(seed=0, hang_rate=1.0, hang_s=0.0)
        assert plan.apply("k", 0, hard=False) == "hang"

    def test_exhausted_attempts_fault_free(self):
        plan = FaultPlan(seed=0, crash_rate=1.0, max_faults_per_task=1)
        assert plan.apply("k", 1, hard=False) is None

    def test_injected_error_is_not_a_repro_error(self):
        from repro.errors import ReproError

        # Injected faults must travel the unhandled path a real bug would.
        assert not issubclass(InjectedFaultError, ReproError)

    def test_crash_exit_code_distinct(self):
        assert CRASH_EXIT_CODE not in (0, 1, 2)


class TestFromSpec:
    def test_full_spec(self):
        plan = FaultPlan.from_spec(
            "seed=7,crash=0.2,error_rate=0.1,hang=0.05,corrupt=0.05,"
            "hang_s=5,max_faults_per_task=2"
        )
        assert plan == FaultPlan(
            seed=7, crash_rate=0.2, error_rate=0.1, hang_rate=0.05,
            corrupt_rate=0.05, hang_s=5.0, max_faults_per_task=2,
        )

    def test_rate_suffix_optional(self):
        assert FaultPlan.from_spec("crash=0.2") == FaultPlan.from_spec(
            "crash_rate=0.2"
        )

    def test_whitespace_and_empty_entries_tolerated(self):
        plan = FaultPlan.from_spec(" seed=3 , crash=0.1 ,")
        assert plan.seed == 3 and plan.crash_rate == 0.1

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_spec("explode=0.5")

    def test_missing_value_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_spec("crash")

    def test_bad_value_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_spec("crash=lots")


class TestValidation:
    def test_rate_out_of_range(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(crash_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(error_rate=-0.1)

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(crash_rate=0.6, error_rate=0.6)

    def test_negative_hang_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(hang_s=-1.0)

    def test_negative_max_faults_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(max_faults_per_task=-1)

    def test_total_rate(self):
        plan = FaultPlan(crash_rate=0.1, error_rate=0.2, corrupt_rate=0.3)
        assert plan.total_rate == pytest.approx(0.6)

    def test_fault_kinds_cover_rates(self):
        assert FAULT_KINDS == ("crash", "error", "hang", "corrupt")

    def test_corrupted_payload_fields(self):
        payload = CorruptedPayload(task_key="abc", attempt=1)
        assert payload.task_key == "abc" and payload.attempt == 1
