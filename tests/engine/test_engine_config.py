"""EngineConfig: validation, derivation, and the legacy-keyword shims."""

import pathlib

import pytest

from repro.errors import ConfigurationError
from repro.engine.config import EngineConfig
from repro.engine.faults import FaultPlan
from repro.experiments.runner import ExperimentContext


class TestValidation:
    def test_defaults_are_valid(self):
        config = EngineConfig()
        assert config.workers is None
        assert config.resume is False
        assert config.max_retries == 2

    @pytest.mark.parametrize("field,value", [
        ("workers", 0),
        ("evaluator_cache_size", 0),
        ("task_timeout", 0.0),
        ("task_timeout", -1.0),
        ("max_retries", -1),
        ("retry_backoff_s", -0.1),
        ("max_pool_failures", -1),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            EngineConfig(**{field: value})

    def test_directory_strings_coerced_to_paths(self):
        config = EngineConfig(cache_dir="a/b", checkpoint_dir="c/d")
        assert config.cache_dir == pathlib.Path("a/b")
        assert config.checkpoint_dir == pathlib.Path("c/d")

    def test_effective_workers(self):
        assert EngineConfig(workers=3).effective_workers == 3
        assert EngineConfig().effective_workers >= 1

    def test_replace(self):
        config = EngineConfig(workers=2)
        derived = config.replace(resume=True, max_retries=5)
        assert derived.workers == 2
        assert derived.resume is True
        assert derived.max_retries == 5
        assert config.resume is False  # frozen original untouched

    def test_retry_backoff_doubles(self):
        config = EngineConfig(retry_backoff_s=0.1)
        assert config.retry_backoff(1) == pytest.approx(0.1)
        assert config.retry_backoff(2) == pytest.approx(0.2)
        assert config.retry_backoff(3) == pytest.approx(0.4)

    def test_fault_plan_carried(self):
        plan = FaultPlan(seed=1, crash_rate=0.1)
        assert EngineConfig(fault_plan=plan).fault_plan is plan


class TestLegacyKwargsRemoved:
    """PR 5's deprecation cycle is complete: the legacy engine kwargs
    are gone, and every misuse names the ``EngineConfig`` migration."""

    def test_context_workers_kwarg_removed(self):
        with pytest.raises(TypeError):
            ExperimentContext(n_chips=1, n_references=600, workers=3)

    def test_context_evaluator_cache_size_kwarg_removed(self):
        with pytest.raises(TypeError):
            ExperimentContext(
                n_chips=1, n_references=600, evaluator_cache_size=4
            )

    def test_context_engine_type_checked(self):
        with pytest.raises(ConfigurationError, match="EngineConfig"):
            ExperimentContext(n_chips=1, n_references=600, engine=3)

    def test_engine_config_drives_read_only_mirrors(self):
        engine = EngineConfig(workers=4, evaluator_cache_size=5)
        context = ExperimentContext(
            n_chips=1, n_references=600, engine=engine
        )
        assert context.workers == 4
        assert context.evaluator_cache_size == 5

    def test_mirrors_are_read_only(self):
        context = ExperimentContext(n_chips=1, n_references=600)
        with pytest.raises(AttributeError):
            context.workers = 4

    def test_with_overrides_workers_removed(self):
        context = ExperimentContext(n_chips=2, n_references=600)
        with pytest.raises(ConfigurationError, match="EngineConfig"):
            context.with_overrides(workers=5)

    def test_with_overrides_evaluator_cache_size_removed(self):
        context = ExperimentContext(n_chips=2, n_references=600)
        with pytest.raises(ConfigurationError, match="EngineConfig"):
            context.with_overrides(evaluator_cache_size=5)

    def test_with_overrides_engine_replaces(self):
        context = ExperimentContext(n_chips=2, n_references=600)
        derived = context.with_overrides(engine=EngineConfig(workers=6))
        assert derived.workers == 6

    def test_engine_replace_is_the_migration(self):
        context = ExperimentContext(
            n_chips=2, n_references=600,
            engine=EngineConfig(workers=2, max_retries=7),
        )
        derived = context.with_overrides(
            engine=context.engine.replace(workers=5)
        )
        assert derived.engine.workers == 5
        assert derived.engine.max_retries == 7  # other knobs preserved
        assert derived.workers == 5

    def test_runner_legacy_kwargs_removed(self):
        from repro.engine.parallel import ParallelChipRunner

        with pytest.raises(TypeError):
            ParallelChipRunner(workers=1)

    def test_runner_positional_non_config_rejected(self):
        from repro.engine.parallel import ParallelChipRunner

        with pytest.raises(TypeError, match="EngineConfig"):
            ParallelChipRunner(4)

    def test_engine_config_path_warns_nothing(self, recwarn):
        import warnings as warnings_mod

        warnings_mod.simplefilter("always")
        ExperimentContext(
            n_chips=1, n_references=600, engine=EngineConfig(workers=2)
        )
        assert not [
            w for w in recwarn if w.category is DeprecationWarning
        ]

    def test_derived_context_shares_runner(self):
        context = ExperimentContext(n_chips=2, n_references=600)
        try:
            runner = context.runner
            derived = context.with_chips(1)
            assert derived.runner is runner
        finally:
            context.close()

    def test_runner_keyed_by_context_fingerprint(self, tmp_path):
        engine = EngineConfig(workers=1, checkpoint_dir=tmp_path)
        context = ExperimentContext(
            n_chips=1, n_references=600, engine=engine
        )
        try:
            assert context.runner.run_key == context.cache_fingerprint()
        finally:
            context.close()

    def test_engine_knobs_not_in_fingerprint(self):
        plain = ExperimentContext(n_chips=1, n_references=600)
        tuned = ExperimentContext(
            n_chips=1, n_references=600,
            engine=EngineConfig(
                workers=8, resume=True, checkpoint_dir="x",
                task_timeout=5.0, max_retries=9,
                fault_plan=FaultPlan(seed=1, crash_rate=0.5),
            ),
        )
        assert plain.cache_fingerprint() == tuned.cache_fingerprint()
