"""FLOW001-005: seed provenance and process-boundary flow rules."""


SAMPLER = """
def sample(rng):
    return rng.integers(0, 10)
"""


class TestFlow001UnseededRngReachesSampler:
    def test_unseeded_rng_passed_into_sampler_is_reported(self, flow_check):
        findings = flow_check({
            "repro.variation.sampler": SAMPLER,
            "repro.app.main": """
            import numpy as np

            from repro.variation.sampler import sample

            def build():
                rng = np.random.default_rng()
                return sample(rng)
            """,
        }, select=["FLOW001"])
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "FLOW001"
        assert "default_rng" in finding.message
        assert "repro.variation.sampler.sample" in finding.message
        assert len(finding.flow_path) >= 2
        assert any("sink" in step for step in finding.flow_path)

    def test_literal_seed_is_fine_outside_sampling_packages(self, flow_check):
        findings = flow_check({
            "repro.variation.sampler": SAMPLER,
            "repro.app.main": """
            import numpy as np

            from repro.variation.sampler import sample

            def build():
                rng = np.random.default_rng(42)
                return sample(rng)
            """,
        }, select=["FLOW001"])
        assert findings == []

    def test_seed_parameter_is_fine(self, flow_check):
        findings = flow_check({
            "repro.variation.sampler": SAMPLER,
            "repro.app.main": """
            import numpy as np

            from repro.variation.sampler import sample

            def build(seed):
                rng = np.random.default_rng(seed)
                return sample(rng)
            """,
        }, select=["FLOW001"])
        assert findings == []

    def test_taint_propagates_through_helper_return(self, flow_check):
        findings = flow_check({
            "repro.variation.sampler": SAMPLER,
            "repro.app.main": """
            import numpy as np

            from repro.variation.sampler import sample

            def make():
                return np.random.default_rng()

            def build():
                rng = make()
                return sample(rng)
            """,
        }, select=["FLOW001"])
        assert len(findings) == 1
        assert findings[0].line == 7  # the default_rng() creation site

    def test_unseeded_rng_that_never_reaches_sampling_is_silent(
        self, flow_check
    ):
        findings = flow_check({
            "repro.variation.sampler": SAMPLER,
            "repro.app.main": """
            import numpy as np

            def local_noise():
                rng = np.random.default_rng()
                return rng.random()
            """,
        }, select=["FLOW001"])
        assert findings == []


class TestFlow002SamplingRngProvenance:
    def test_hardcoded_literal_seed_in_sampling_code(self, flow_check):
        findings = flow_check({
            "repro.variation.golden": """
            import numpy as np

            def golden_chip():
                rng = np.random.default_rng(0)
                return rng.integers(0, 10)
            """,
        }, select=["FLOW002"])
        assert len(findings) == 1
        assert findings[0].rule == "FLOW002"
        assert "not derived from an explicit seed parameter" in (
            findings[0].message
        )

    def test_missing_seed_argument_in_sampling_code(self, flow_check):
        findings = flow_check({
            "repro.engine.faults.plan": """
            import numpy as np

            def roll():
                return np.random.default_rng().random()
            """,
        }, select=["FLOW002"])
        assert len(findings) == 1
        assert "no seed argument" in findings[0].message

    def test_seed_parameter_threaded_is_clean(self, flow_check):
        findings = flow_check({
            "repro.variation.montecarlo": """
            import numpy as np

            def sample_chip(chip_seed):
                rng = np.random.default_rng(chip_seed)
                return rng.integers(0, 10)
            """,
        }, select=["FLOW002"])
        assert findings == []

    def test_parameter_proven_through_call_sites(self, flow_check):
        # ``value`` is not seed-named; its call site passes ``seed``.
        findings = flow_check({
            "repro.variation.montecarlo": """
            import numpy as np

            def make_rng(value):
                return np.random.default_rng(value)

            def sample(seed):
                return make_rng(seed).integers(0, 10)
            """,
        }, select=["FLOW002"])
        assert findings == []

    def test_self_seed_attribute_is_clean(self, flow_check):
        findings = flow_check({
            "repro.technology.backend": """
            import numpy as np

            class Backend:
                def __init__(self, seed):
                    self.seed = seed

                def sample(self):
                    return np.random.default_rng(self.seed)
            """,
        }, select=["FLOW002"])
        assert findings == []


class TestFlow003AmbientRngReachable:
    def test_ambient_stdlib_call_in_reachable_helper(self, flow_check):
        findings = flow_check({
            "repro.util.noise": """
            import random

            def jitter():
                return random.random()
            """,
            "repro.variation.sampler": """
            from repro.util.noise import jitter

            def sample(seed):
                return jitter() + seed
            """,
        }, select=["FLOW003"])
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "FLOW003"
        assert "random.random()" in finding.message
        assert finding.path.endswith("repro/util/noise.py")
        assert len(finding.flow_path) == 2  # sampler entry -> helper

    def test_legacy_numpy_global_call_is_reported(self, flow_check):
        findings = flow_check({
            "repro.variation.sampler": """
            import numpy as np

            def sample(seed):
                return np.random.rand()
            """,
        }, select=["FLOW003"])
        assert len(findings) == 1
        assert "numpy.random.rand()" in findings[0].message

    def test_unreachable_ambient_call_is_silent(self, flow_check):
        findings = flow_check({
            "repro.util.noise": """
            import random

            def jitter():
                return random.random()
            """,
            "repro.variation.sampler": """
            def sample(seed):
                return seed
            """,
        }, select=["FLOW003"])
        assert findings == []

    def test_seeded_random_instance_is_not_ambient(self, flow_check):
        findings = flow_check({
            "repro.variation.sampler": """
            import random

            def sample(seed):
                return random.Random(seed).random()
            """,
        }, select=["FLOW003"])
        assert findings == []


class TestFlow004TaintedTaskPayload:
    def test_helper_returning_lambda_into_task_payload(self, flow_check):
        findings = flow_check({
            "repro.app.main": """
            def make_fn(scale):
                return lambda value: value * scale

            def EvalTask(fn):
                return fn

            def submit():
                return EvalTask(fn=make_fn(2.0))
            """,
        }, select=["FLOW004"])
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "FLOW004"
        assert "returns a lambda" in finding.message
        assert "worker task payload" in finding.message
        assert len(finding.flow_path) == 2

    def test_local_bound_from_helper_then_passed(self, flow_check):
        findings = flow_check({
            "repro.app.main": """
            def make_fn(scale):
                def apply(value):
                    return value * scale
                return apply

            def submit(pool, chips):
                fn = make_fn(2.0)
                return pool.map(fn, chips)
            """,
        }, select=["FLOW004"])
        assert len(findings) == 1
        assert "frame-local def" in findings[0].message
        assert "process-pool call" in findings[0].message
        assert len(findings[0].flow_path) == 3

    def test_helper_returning_module_level_function_is_clean(
        self, flow_check
    ):
        findings = flow_check({
            "repro.app.main": """
            def worker(value):
                return value

            def make_fn(scale):
                return worker

            def submit(pool, chips):
                return pool.map(make_fn(2.0), chips)
            """,
        }, select=["FLOW004"])
        assert findings == []


class TestFlow005TaintedPoolInitializer:
    def test_lambda_initializer(self, flow_check):
        findings = flow_check({
            "repro.app.main": """
            def start(pool_cls):
                return pool_cls(initializer=lambda: None)
            """,
        }, select=["FLOW005"])
        assert len(findings) == 1
        assert findings[0].rule == "FLOW005"
        assert "lambda" in findings[0].message

    def test_nested_function_initializer(self, flow_check):
        findings = flow_check({
            "repro.app.main": """
            def start(pool_cls):
                def setup():
                    return None
                return pool_cls(initializer=setup)
            """,
        }, select=["FLOW005"])
        assert len(findings) == 1
        assert "frame-local def" in findings[0].message

    def test_lambda_inside_initargs(self, flow_check):
        findings = flow_check({
            "repro.app.main": """
            def init_worker(fn):
                return fn

            def start(pool_cls):
                return pool_cls(
                    initializer=init_worker,
                    initargs=(lambda: None,),
                )
            """,
        }, select=["FLOW005"])
        assert len(findings) == 1
        assert "a lambda" in findings[0].message

    def test_module_level_initializer_is_clean(self, flow_check):
        findings = flow_check({
            "repro.app.main": """
            def init_worker():
                return None

            def start(pool_cls):
                return pool_cls(initializer=init_worker, initargs=(1,))
            """,
        }, select=["FLOW005"])
        assert findings == []

    def test_helper_returned_closure_initializer(self, flow_check):
        findings = flow_check({
            "repro.app.main": """
            def make_init(size):
                return lambda: size

            def start(pool_cls):
                return pool_cls(initializer=make_init(8))
            """,
        }, select=["FLOW005"])
        assert len(findings) == 1
        assert "returns a lambda" in findings[0].message
