"""Baseline edge cases: multisets, renames, flow-path round-trip."""

import json
import textwrap

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.cli import EXIT_FINDINGS, EXIT_OK, main
from repro.analysis.findings import Finding


def finding(path="repro/core/sample.py", line=4, rule="DET001",
            snippet="return random.random()"):
    return Finding(
        path=path, line=line, col=11, rule=rule,
        message="global random", snippet=snippet,
    )


class TestMultisetMatching:
    def test_same_snippet_on_two_lines_needs_two_entries(self):
        findings = [finding(line=4), finding(line=9)]
        one_entry = Baseline(entries=[BaselineEntry(
            rule="DET001", path="repro/core/sample.py",
            snippet="return random.random()", reason="legacy",
        )])
        new, matched, stale = one_entry.partition(findings)
        assert len(matched) == 1
        assert len(new) == 1
        assert stale == []

    def test_two_entries_absorb_both_lines(self):
        findings = [finding(line=4), finding(line=9)]
        entry = BaselineEntry(
            rule="DET001", path="repro/core/sample.py",
            snippet="return random.random()", reason="legacy",
        )
        two_entries = Baseline(entries=[entry, BaselineEntry(**vars(entry))])
        new, matched, stale = two_entries.partition(findings)
        assert new == []
        assert len(matched) == 2
        assert stale == []

    def test_surplus_duplicate_entries_reported_stale_once_each(self):
        entry = BaselineEntry(
            rule="DET001", path="repro/core/sample.py",
            snippet="return random.random()", reason="legacy",
        )
        baseline = Baseline(entries=[
            entry, BaselineEntry(**vars(entry)), BaselineEntry(**vars(entry)),
        ])
        new, matched, stale = baseline.partition([finding(line=4)])
        assert new == []
        assert len(matched) == 1
        assert len(stale) == 2


class TestRenameStaleness:
    DIRTY = """
    import random

    def jitter():
        return random.random()
    """

    def test_rename_makes_entries_stale_and_findings_new(self, tmp_path, capsys):
        old = tmp_path / "legacy.py"
        old.write_text(textwrap.dedent(self.DIRTY))
        baseline_path = tmp_path / "baseline.json"
        assert main([
            str(old), "--write-baseline", "--baseline", str(baseline_path),
        ]) == EXIT_OK
        capsys.readouterr()

        # Rename: same content, new path -> entries no longer match.
        renamed = tmp_path / "modern.py"
        old.rename(renamed)
        assert main([
            str(renamed), "--baseline", str(baseline_path),
        ]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "stale baseline entry" in out
        assert "legacy.py" in out
        assert "modern.py" in out

    def test_strict_baseline_fails_on_stale_only(self, tmp_path, capsys):
        old = tmp_path / "legacy.py"
        old.write_text(textwrap.dedent(self.DIRTY))
        baseline_path = tmp_path / "baseline.json"
        assert main([
            str(old), "--write-baseline", "--baseline", str(baseline_path),
        ]) == EXIT_OK
        capsys.readouterr()

        old.write_text("def quiet():\n    return 1\n")
        assert main([
            str(old), "--baseline", str(baseline_path),
        ]) == EXIT_OK
        assert main([
            str(old), "--baseline", str(baseline_path), "--strict-baseline",
        ]) == EXIT_FINDINGS


class TestFlowPathRoundTrip:
    def test_flow_path_saved_and_loaded(self, tmp_path):
        chain = (
            "repro/app.py:7 in repro.app.build",
            "repro/app.py:8 in repro.app.build",
            "sink repro.variation.sampler.sample",
        )
        source = Finding(
            path="repro/app.py", line=7, col=10, rule="FLOW001",
            message="unseeded rng reaches sampler",
            snippet="rng = np.random.default_rng()",
            flow_path=chain,
        )
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings([source], "known seed fork").save(baseline_path)

        raw = json.loads(baseline_path.read_text())
        assert raw["findings"][0]["flow_path"] == list(chain)

        loaded = Baseline.load(baseline_path)
        assert loaded.entries[0].flow_path == chain
        # Matching stays content-based: the chain is documentation only.
        assert loaded.entries[0].key == (
            "FLOW001", "repro/app.py", "rng = np.random.default_rng()",
        )

    def test_entries_without_flow_path_omit_the_key(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings([finding()], "legacy").save(baseline_path)
        raw = json.loads(baseline_path.read_text())
        assert "flow_path" not in raw["findings"][0]
