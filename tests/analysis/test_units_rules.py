"""Positive/negative fixtures for the unit-consistency rules."""


def rules_hit(findings):
    return {f.rule for f in findings}


class TestUNIT001RawConversionFactor:
    def test_flags_assignment_with_raw_factor(self, check):
        findings = check(
            """
            def report(chip):
                retention_ns = chip.retention * 1e9
                return retention_ns
            """,
            select=["UNIT001"],
        )
        assert rules_hit(findings) == {"UNIT001"}

    def test_flags_keyword_argument_with_raw_factor(self, check):
        findings = check(
            """
            def row(make_row, access):
                return make_row(access_time_ps=access * 1e12)
            """,
            select=["UNIT001"],
        )
        assert rules_hit(findings) == {"UNIT001"}

    def test_flags_reading_suffixed_name_back_to_si(self, check):
        findings = check(
            """
            def seconds(delay_ns):
                return delay_ns * 1e-9
            """,
            select=["UNIT001"],
        )
        assert rules_hit(findings) == {"UNIT001"}

    def test_allows_units_helpers(self, check):
        findings = check(
            """
            from repro import units

            def report(chip):
                retention_ns = units.to_ns(chip.retention)
                return retention_ns
            """,
            select=["UNIT001"],
        )
        assert findings == []

    def test_allows_epsilon_guards_without_unit_context(self, check):
        findings = check(
            """
            import numpy as np

            def safe_ratio(a, b):
                return a / np.maximum(b, 1e-12)
            """,
            select=["UNIT001"],
        )
        assert findings == []

    def test_ignores_unwatched_packages(self, check):
        findings = check(
            """
            def report(chip):
                retention_ns = chip.retention * 1e9
                return retention_ns
            """,
            select=["UNIT001"],
            module="repro.workloads.sample",
        )
        assert findings == []


class TestUNIT002MixedSuffixArithmetic:
    def test_flags_addition_across_suffixes(self, check):
        findings = check(
            """
            def total(setup_ns, hold_ps):
                return setup_ns + hold_ps
            """,
            select=["UNIT002"],
        )
        assert rules_hit(findings) == {"UNIT002"}

    def test_flags_comparison_across_suffixes(self, check):
        findings = check(
            """
            def late(access_ps, budget_ns):
                return access_ps > budget_ns
            """,
            select=["UNIT002"],
        )
        assert rules_hit(findings) == {"UNIT002"}

    def test_allows_same_suffix(self, check):
        findings = check(
            """
            def total(setup_ns, hold_ns):
                return setup_ns + hold_ns
            """,
            select=["UNIT002"],
        )
        assert findings == []


class TestUNIT003SuspiciousDefaultMagnitude:
    def test_flags_si_value_in_ns_parameter(self, check):
        findings = check(
            """
            def refresh(period_ns=2.5e-9):
                return period_ns
            """,
            select=["UNIT003"],
        )
        assert rules_hit(findings) == {"UNIT003"}

    def test_flags_si_value_in_module_constant(self, check):
        findings = check(
            """
            RETENTION_FLOOR_NS = 1.2e-8
            """,
            select=["UNIT003"],
        )
        assert rules_hit(findings) == {"UNIT003"}

    def test_allows_plausible_magnitudes(self, check):
        findings = check(
            """
            RETENTION_FLOOR_NS = 12.0

            def refresh(period_ns=2.5, window_us=0.5):
                return period_ns + window_us * 1000.0
            """,
            select=["UNIT003"],
        )
        assert findings == []
