"""Positive/negative fixtures for the API-drift rules."""

import textwrap

from repro.analysis import run_analysis


def rules_hit(findings):
    return {f.rule for f in findings}


class TestAPI001ExportedNameUndefined:
    def test_flags_phantom_export(self, check):
        findings = check(
            """
            def real():
                return 1

            __all__ = ["real", "phantom"]
            """,
            select=["API001"],
        )
        assert rules_hit(findings) == {"API001"}
        assert "phantom" in findings[0].message

    def test_allows_getattr_provided_names(self, check):
        findings = check(
            """
            def __getattr__(name):
                if name == "LazyThing":
                    from repro.core import sample
                    return sample
                raise AttributeError(name)

            __all__ = ["LazyThing"]
            """,
            select=["API001"],
        )
        assert findings == []

    def test_allows_imported_and_assigned_names(self, check):
        findings = check(
            """
            from os.path import join as path_join

            VERSION = "1.0"

            __all__ = ["VERSION", "path_join"]
            """,
            select=["API001"],
        )
        assert findings == []


class TestAPI002PublicNameUnexported:
    def test_flags_public_def_missing_from_all(self, check):
        findings = check(
            """
            __all__ = ["listed"]

            def listed():
                return 1

            def forgotten():
                return 2
            """,
            select=["API002"],
        )
        assert rules_hit(findings) == {"API002"}
        assert "forgotten" in findings[0].message

    def test_allows_private_and_no_all_modules(self, check):
        findings = check(
            """
            def helper():
                return 1

            def _internal():
                return 2
            """,
            select=["API002"],
        )
        assert findings == []


class TestAPI003FacadeDrift:
    def _facade_project(self, tmp_path, facade_src, sub_src):
        root = tmp_path / "proj"
        (root / "repro" / "core").mkdir(parents=True)
        (root / "repro" / "__init__.py").write_text(textwrap.dedent(facade_src))
        (root / "repro" / "core" / "__init__.py").write_text(
            textwrap.dedent(sub_src)
        )
        return run_analysis(
            [root / "repro"], select=["API003"], display_root=root
        ).new_findings

    def test_flags_import_of_unexported_subpackage_name(self, tmp_path):
        findings = self._facade_project(
            tmp_path,
            """
            from repro.core import evaluate, secret_helper

            __all__ = ["evaluate", "secret_helper"]
            """,
            """
            def evaluate():
                return 1

            def secret_helper():
                return 2

            __all__ = ["evaluate"]
            """,
        )
        assert any("secret_helper" in f.message for f in findings)

    def test_flags_rexport_missing_from_facade_all(self, tmp_path):
        findings = self._facade_project(
            tmp_path,
            """
            from repro.core import evaluate, evaluate_many

            __all__ = ["evaluate"]
            """,
            """
            def evaluate():
                return 1

            def evaluate_many():
                return 2

            __all__ = ["evaluate", "evaluate_many"]
            """,
        )
        assert any(
            "omits it from repro.__all__" in f.message for f in findings
        )

    def test_flags_missing_required_exports(self, tmp_path):
        findings = self._facade_project(
            tmp_path,
            """
            __all__ = ["evaluate"]
            """,
            """
            __all__ = []
            """,
        )
        required = {
            f.message for f in findings if "required facade export" in f.message
        }
        assert any("evaluate_many" in m for m in required)

    def test_shipped_facade_is_clean(self):
        from pathlib import Path

        repo_src = Path(__file__).resolve().parents[2] / "src"
        findings = run_analysis(
            [repo_src / "repro"], select=["API003"], display_root=repo_src
        ).new_findings
        assert findings == []


class TestAPI005TechnologyBackendConformance:
    def test_flags_partial_backend(self, check):
        findings = check(
            """
            from repro.technology.backends import TechnologyBackend

            class HalfBackend(TechnologyBackend):
                name = "half"

                def cell_timing(self, node):
                    return None

                def cell_energy(self, node):
                    return None
            """,
            select=["API005"],
        )
        assert rules_hit(findings) == {"API005"}
        assert "HalfBackend" in findings[0].message
        assert "sample_retention_map" in findings[0].message

    def test_flags_attribute_qualified_base(self, check):
        findings = check(
            """
            import repro.technology.backends as backends

            class EmptyBackend(backends.TechnologyBackend):
                name = "empty"
            """,
            select=["API005"],
        )
        assert rules_hit(findings) == {"API005"}
        assert "latency_model" in findings[0].message

    def test_allows_complete_backend(self, check):
        source = (
            "from repro.technology.backends import TechnologyBackend\n\n"
            "class FullBackend(TechnologyBackend):\n"
            "    name = \"full\"\n"
        )
        for method in (
            "cell_timing", "cell_energy", "leakage_power",
            "nominal_retention_time", "sample_retention_map",
            "refresh_cost", "latency_model",
        ):
            source += f"\n    def {method}(self, *args):\n        pass\n"
        findings = check(source, select=["API005"])
        assert findings == []

    def test_abc_and_unrelated_classes_exempt(self, check):
        findings = check(
            """
            import abc

            class TechnologyBackend(abc.ABC):
                pass

            class Unrelated:
                pass
            """,
            select=["API005"],
        )
        assert findings == []

    def test_required_methods_match_runtime_protocol(self):
        from repro.analysis.rules.api_drift import BACKEND_REQUIRED_METHODS
        from repro.technology.backends import BACKEND_PROTOCOL_METHODS

        assert BACKEND_REQUIRED_METHODS == BACKEND_PROTOCOL_METHODS

    def test_shipped_backends_are_clean(self):
        from pathlib import Path

        repo_src = Path(__file__).resolve().parents[2] / "src"
        findings = run_analysis(
            [repo_src / "repro"], select=["API005"], display_root=repo_src
        ).new_findings
        assert findings == []
