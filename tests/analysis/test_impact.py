"""Golden-cone impact analysis: diff parsing, cones, CLI plumbing."""

import json
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.analysis.cli import EXIT_OK, EXIT_USAGE, impact_main
from repro.analysis.flow.graph import get_call_graph
from repro.analysis.flow.impact import (
    IMPACT_SCHEMA_VERSION,
    compute_impact,
    golden_entry_points,
    parse_unified_diff,
)
from repro.analysis.source import collect_modules

REPO_ROOT = Path(__file__).resolve().parents[2]

ALL_SUITES = [
    "fig01_reuse", "fig04_retention_curve", "fig06_typical",
    "fig07_leakage", "fig08_line_retention", "fig09_schemes",
    "fig10_hundred_chips", "fig11_associativity", "fig12_sensitivity",
    "geomsweep", "table3", "techcompare",
]

#: Suites whose evaluate path goes through the batched scheme kernel.
SCHEME_SUITES = [
    "fig06_typical", "fig09_schemes", "fig10_hundred_chips",
    "fig11_associativity", "fig12_sensitivity", "geomsweep",
    "table3", "techcompare",
]


@pytest.fixture(scope="module")
def repo_project():
    return collect_modules([REPO_ROOT / "src" / "repro"], REPO_ROOT)


def one_line_diff(path, lineno):
    return (
        f"--- a/{path}\n"
        f"+++ b/{path}\n"
        f"@@ -{lineno},1 +{lineno},1 @@\n"
    )


class TestDiffParsing:
    def test_hunk_ranges_and_prefix_stripping(self):
        summary = parse_unified_diff(textwrap.dedent("""\
            --- a/src/repro/core/batcheval.py
            +++ b/src/repro/core/batcheval.py
            @@ -10,2 +12,3 @@
            @@ -40,1 +44,1 @@
        """))
        assert summary.changed_lines == {
            "src/repro/core/batcheval.py": {12, 13, 14, 44},
        }
        assert summary.deleted_files == []

    def test_pure_deletion_anchors_on_surviving_line(self):
        summary = parse_unified_diff(textwrap.dedent("""\
            --- a/src/repro/core/batcheval.py
            +++ b/src/repro/core/batcheval.py
            @@ -30,4 +29,0 @@
        """))
        assert summary.changed_lines == {
            "src/repro/core/batcheval.py": {29},
        }

    def test_deleted_file_goes_to_dev_null(self):
        summary = parse_unified_diff(textwrap.dedent("""\
            --- a/src/repro/core/gone.py
            +++ /dev/null
            @@ -1,10 +0,0 @@
        """))
        assert summary.deleted_files == ["src/repro/core/gone.py"]
        assert summary.changed_lines == {}

    def test_multiple_files(self):
        summary = parse_unified_diff(textwrap.dedent("""\
            --- a/README.md
            +++ b/README.md
            @@ -1,1 +1,2 @@
            --- a/src/repro/units.py
            +++ b/src/repro/units.py
            @@ -5,1 +5,1 @@
        """))
        assert set(summary.changed_lines) == {
            "README.md", "src/repro/units.py",
        }


class TestGoldenEntryPoints:
    def test_all_twelve_suites_found(self, repo_project):
        graph = get_call_graph(repo_project)
        entries = golden_entry_points(graph)
        assert sorted(entries) == ALL_SUITES
        for suite, qualname in entries.items():
            assert qualname == f"repro.experiments.{suite}.run"

    def test_plumbing_modules_excluded(self, repo_project):
        graph = get_call_graph(repo_project)
        entries = golden_entry_points(graph)
        assert "run_all" not in entries
        assert "runner" not in entries


class TestImpactCones:
    def test_batcheval_change_affects_every_scheme_suite(self, repo_project):
        # Acceptance: a commit touching repro/core/batcheval.py reports
        # every golden suite reachable from it.
        source = REPO_ROOT / "src" / "repro" / "core" / "batcheval.py"
        lines = source.read_text(encoding="utf-8").splitlines()
        lineno = next(
            i + 1 for i, line in enumerate(lines)
            if line.startswith("def evaluate(")
        ) + 1
        report = compute_impact(
            repo_project,
            parse_unified_diff(
                one_line_diff("src/repro/core/batcheval.py", lineno)
            ),
            since="test",
        )
        assert report.affected_suites == SCHEME_SUITES
        assert not report.cone_empty
        for suite in report.suites:
            if suite.affected:
                assert suite.witnesses

    def test_docs_only_change_has_empty_cone(self, repo_project):
        # Acceptance: a docs-only commit reports an empty cone.
        diff = (
            one_line_diff("README.md", 1)
            + one_line_diff("DESIGN.md", 10)
        )
        report = compute_impact(
            repo_project, parse_unified_diff(diff), since="docs",
        )
        assert report.cone_empty
        assert report.affected_suites == []
        assert report.unaffected_suites == ALL_SUITES
        assert sorted(report.non_code_files) == ["DESIGN.md", "README.md"]
        assert "fast lane" in report.render_text()

    def test_array_model_change_reaches_the_geometry_sweep(
        self, repo_project
    ):
        # Acceptance: geomsweep is auto-discovered and repro/array/*
        # edits land in its reverse-reachability cone.
        source = REPO_ROOT / "src" / "repro" / "array" / "cactimodel.py"
        lines = source.read_text(encoding="utf-8").splitlines()
        lineno = next(
            i + 1 for i, line in enumerate(lines)
            if line.startswith("def access_time_factor(")
        ) + 1
        report = compute_impact(
            repo_project,
            parse_unified_diff(
                one_line_diff("src/repro/array/cactimodel.py", lineno)
            ),
            since="test",
        )
        assert "geomsweep" in report.affected_suites

    def test_chip_sampler_change_affects_chip_building_suites(
        self, repo_project
    ):
        source = REPO_ROOT / "src" / "repro" / "array" / "chip.py"
        lines = source.read_text(encoding="utf-8").splitlines()
        lineno = next(
            i + 1 for i, line in enumerate(lines)
            if "_build_3t1d_sample" in line
        ) + 1
        report = compute_impact(
            repo_project,
            parse_unified_diff(one_line_diff("src/repro/array/chip.py", lineno)),
            since="test",
        )
        assert len(report.affected_suites) >= 8

    def test_unmapped_source_file_is_conservative(self, repo_project):
        report = compute_impact(
            repo_project,
            parse_unified_diff(
                one_line_diff("src/repro/core/brand_new_module.py", 1)
            ),
            since="test",
        )
        assert report.affected_suites == ALL_SUITES
        assert report.unmapped_python_files == [
            "src/repro/core/brand_new_module.py",
        ]

    def test_python_file_outside_tree_is_ignored(self, repo_project):
        report = compute_impact(
            repo_project,
            parse_unified_diff(one_line_diff("benchmarks/perf/bench.py", 3)),
            since="test",
        )
        assert report.cone_empty
        assert "benchmarks/perf/bench.py" in report.non_code_files

    def test_json_report_shape(self, repo_project):
        report = compute_impact(
            repo_project,
            parse_unified_diff(one_line_diff("README.md", 1)),
            since="origin/main",
        )
        payload = json.loads(report.render_json())
        assert payload["schema_version"] == IMPACT_SCHEMA_VERSION
        assert payload["since"] == "origin/main"
        assert payload["cone_empty"] is True
        assert set(payload) >= {
            "affected_suites", "unaffected_suites", "suites",
            "changed_functions", "unmapped_python_files", "non_code_files",
        }


class TestImpactCli:
    @pytest.fixture
    def git_repo(self, tmp_path, monkeypatch):
        """A tiny real repo: one driver whose run() calls a core helper."""
        root = tmp_path / "repo"
        pkg = root / "src" / "repro"
        for sub in ("experiments", "core"):
            (pkg / sub).mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "experiments" / "__init__.py").write_text("")
        (pkg / "core" / "__init__.py").write_text("")
        (pkg / "core" / "engine.py").write_text(textwrap.dedent("""\
            def evaluate(trace):
                return trace


            def unrelated():
                return None
        """))
        (pkg / "experiments" / "fig99_demo.py").write_text(
            textwrap.dedent("""\
                from repro.core.engine import evaluate


                def run(context):
                    return evaluate(context)
            """)
        )
        (root / "README.md").write_text("demo\n")

        def git(*args):
            subprocess.run(
                ["git", *args], cwd=root, check=True,
                capture_output=True, text=True,
                env={
                    "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                    "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
                    "HOME": str(tmp_path), "PATH": "/usr/bin:/bin",
                },
            )

        git("init", "-q")
        git("add", "-A")
        git("commit", "-qm", "seed")
        monkeypatch.chdir(root)
        return root

    def test_core_change_reports_affected_suite(self, git_repo, capsys):
        engine = git_repo / "src" / "repro" / "core" / "engine.py"
        engine.write_text(
            engine.read_text().replace("return trace", "return trace * 2")
        )
        assert impact_main(["--since", "HEAD", "--format", "json"]) == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["affected_suites"] == ["fig99_demo"]
        assert payload["cone_empty"] is False

    def test_docs_change_takes_fast_lane(self, git_repo, capsys):
        (git_repo / "README.md").write_text("demo updated\n")
        out_file = git_repo / "impact.json"
        assert impact_main([
            "--since", "HEAD", "--out", str(out_file),
        ]) == EXIT_OK
        assert "fast lane" in capsys.readouterr().out
        payload = json.loads(out_file.read_text())
        assert payload["cone_empty"] is True

    def test_bad_revision_is_usage_error(self, git_repo, capsys):
        assert impact_main(["--since", "no-such-rev"]) == EXIT_USAGE
        assert "error" in capsys.readouterr().err

    def test_missing_root_is_usage_error(self, git_repo, capsys):
        assert impact_main([
            "--since", "HEAD", "--root", "no/such/dir",
        ]) == EXIT_USAGE
