"""Call-graph construction: indexing, edge tiers, reachability."""

from repro.analysis.flow.graph import (
    ALL_EDGE_KINDS,
    EDGE_DIRECT,
    EDGE_NAME,
    EDGE_REF,
    MODULE_BODY,
)


class TestFunctionIndex:
    def test_functions_methods_and_module_bodies(self, graph_of):
        graph = graph_of({
            "repro.core.engine": """
            def evaluate(trace):
                def inner(x):
                    return x
                return inner(trace)

            class Runner:
                def run(self, chip):
                    return evaluate(chip)
            """,
        })
        names = set(graph.functions)
        assert f"repro.core.engine.{MODULE_BODY}" in names
        assert "repro.core.engine.evaluate" in names
        assert "repro.core.engine.evaluate.inner" in names
        assert "repro.core.engine.Runner.run" in names
        info = graph.functions["repro.core.engine.Runner.run"]
        assert info.class_name == "Runner"
        assert graph.functions["repro.core.engine.evaluate"].class_name is None

    def test_function_at_picks_innermost_span(self, graph_of):
        graph = graph_of({
            "repro.core.engine": """
            def outer():
                def inner():
                    return 1
                return inner()
            """,
        })
        info = graph.function_at("repro.core.engine", 4)
        assert info is not None
        assert info.qualname == "repro.core.engine.outer.inner"
        body = graph.function_at("repro.core.engine", 1)
        assert body is not None and body.name == MODULE_BODY


class TestEdgeTiers:
    def test_direct_edge_through_from_import(self, graph_of):
        graph = graph_of({
            "repro.core.engine": """
            def evaluate(trace):
                return trace
            """,
            "repro.app": """
            from repro.core.engine import evaluate

            def main(trace):
                return evaluate(trace)
            """,
        })
        edges = graph.callees("repro.app.main", kinds=(EDGE_DIRECT,))
        assert [e.callee for e in edges] == ["repro.core.engine.evaluate"]

    def test_direct_edge_through_facade_reexport(self, graph_of):
        graph = graph_of({
            "repro.core.engine": """
            def evaluate(trace):
                return trace
            """,
            "repro.__init__": """
            from repro.core.engine import evaluate
            """,
            "repro.app": """
            from repro import evaluate

            def main(trace):
                return evaluate(trace)
            """,
        })
        edges = graph.callees("repro.app.main", kinds=(EDGE_DIRECT,))
        assert [e.callee for e in edges] == ["repro.core.engine.evaluate"]

    def test_self_method_call_is_direct(self, graph_of):
        graph = graph_of({
            "repro.core.engine": """
            class Runner:
                def helper(self):
                    return 1

                def run(self):
                    return self.helper()
            """,
        })
        edges = graph.callees("repro.core.engine.Runner.run",
                              kinds=(EDGE_DIRECT,))
        assert [e.callee for e in edges] == ["repro.core.engine.Runner.helper"]

    def test_attribute_call_name_edges_reach_every_same_named(self, graph_of):
        graph = graph_of({
            "repro.experiments.fig01": """
            def run(context):
                return 1
            """,
            "repro.experiments.fig02": """
            def run(context):
                return 2
            """,
            "repro.engine.registry": """
            def dispatch(experiment, context):
                return experiment.run(context)
            """,
        })
        edges = graph.callees("repro.engine.registry.dispatch",
                              kinds=(EDGE_NAME,))
        callees = {e.callee for e in edges}
        assert "repro.experiments.fig01.run" in callees
        assert "repro.experiments.fig02.run" in callees

    def test_bare_function_reference_is_ref_edge(self, graph_of):
        graph = graph_of({
            "repro.engine.registry": """
            def run(context):
                return 1

            def register(fn):
                return fn

            HANDLE = register(run)
            """,
        })
        body = f"repro.engine.registry.{MODULE_BODY}"
        ref = [e for e in graph.callees(body, kinds=(EDGE_REF,))
               if e.callee == "repro.engine.registry.run"]
        assert ref, "bare reference to run() should produce a ref edge"

    def test_reachability_respects_kind_filter(self, graph_of):
        graph = graph_of({
            "repro.experiments.fig01": """
            def run(context):
                return 1
            """,
            "repro.engine.registry": """
            def dispatch(experiment, context):
                return experiment.run(context)
            """,
        })
        entry = "repro.engine.registry.dispatch"
        assert "repro.experiments.fig01.run" in graph.reachable_from(
            entry, kinds=ALL_EDGE_KINDS
        )
        assert "repro.experiments.fig01.run" not in graph.reachable_from(
            entry, kinds=(EDGE_DIRECT,)
        )

    def test_relative_import_resolution(self, graph_of):
        graph = graph_of({
            "repro.engine.worker": """
            def init_worker():
                return None
            """,
            "repro.engine.parallel": """
            from .worker import init_worker

            def start():
                return init_worker()
            """,
        })
        edges = graph.callees("repro.engine.parallel.start",
                              kinds=(EDGE_DIRECT,))
        assert [e.callee for e in edges] == ["repro.engine.worker.init_worker"]
