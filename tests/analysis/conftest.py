"""Shared fixture: run selected rules over an in-memory snippet.

Snippets are written under a synthetic ``repro``-like package tree so
package-scoped rules (DET005, UNIT*) see realistic dotted module names.
"""

import textwrap

import pytest

from repro.analysis import run_analysis
from repro.analysis.source import collect_modules


@pytest.fixture
def tree(tmp_path):
    """tree({"repro.variation.sampler": src, ...}) -> package root.

    Writes each dotted module (plus the ``__init__.py`` chain above it)
    under ``tmp_path`` so whole-program rules see realistic module names.
    """

    def _build(modules):
        for dotted, source in modules.items():
            parts = dotted.split(".")
            directory = tmp_path
            for part in parts[:-1]:
                directory = directory / part
                directory.mkdir(exist_ok=True)
                init = directory / "__init__.py"
                if not init.exists():
                    init.write_text("")
            (directory / f"{parts[-1]}.py").write_text(
                textwrap.dedent(source)
            )
        return tmp_path

    return _build


@pytest.fixture
def flow_check(tree, tmp_path):
    """flow_check(modules, select=[...]) -> new findings over the tree."""

    def _check(modules, select=None):
        root = tree(modules)
        report = run_analysis([root], select=select, display_root=root)
        return report.new_findings

    return _check


@pytest.fixture
def graph_of(tree, tmp_path):
    """graph_of(modules) -> whole-program CallGraph over the tree."""
    from repro.analysis.flow.graph import build_call_graph

    def _build(modules):
        root = tree(modules)
        return build_call_graph(collect_modules([root], root))

    return _build


@pytest.fixture
def check(tmp_path):
    """check(source, select=[...], module="repro.core.sample") -> findings."""

    def _check(source, select=None, module="repro.core.sample"):
        parts = module.split(".")
        directory = tmp_path
        for part in parts[:-1]:
            directory = directory / part
            directory.mkdir(exist_ok=True)
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text("")
        target = directory / f"{parts[-1]}.py"
        target.write_text(textwrap.dedent(source))
        report = run_analysis(
            [target], select=select, display_root=tmp_path
        )
        return report.new_findings

    return _check
