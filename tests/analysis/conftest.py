"""Shared fixture: run selected rules over an in-memory snippet.

Snippets are written under a synthetic ``repro``-like package tree so
package-scoped rules (DET005, UNIT*) see realistic dotted module names.
"""

import textwrap

import pytest

from repro.analysis import run_analysis


@pytest.fixture
def check(tmp_path):
    """check(source, select=[...], module="repro.core.sample") -> findings."""

    def _check(source, select=None, module="repro.core.sample"):
        parts = module.split(".")
        directory = tmp_path
        for part in parts[:-1]:
            directory = directory / part
            directory.mkdir(exist_ok=True)
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text("")
        target = directory / f"{parts[-1]}.py"
        target.write_text(textwrap.dedent(source))
        report = run_analysis(
            [target], select=select, display_root=tmp_path
        )
        return report.new_findings

    return _check
