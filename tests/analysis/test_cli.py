"""CLI behavior: exit codes, JSON schema, suppression, baseline round-trip."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.cli import EXIT_FINDINGS, EXIT_OK, EXIT_USAGE, main
from repro.analysis.reporters import REPORT_SCHEMA_VERSION

CLEAN_SOURCE = """
def helper(items=None):
    return items or []
"""

DIRTY_SOURCE = """
import random

def jitter(items=[]):
    items.append(random.random())
    return items
"""


def write_module(tmp_path, source, name="sample.py"):
    target = tmp_path / name
    target.write_text(textwrap.dedent(source))
    return target


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        target = write_module(tmp_path, CLEAN_SOURCE)
        assert main([str(target), "--no-baseline"]) == EXIT_OK
        assert "OK: 0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        target = write_module(tmp_path, DIRTY_SOURCE)
        assert main([str(target), "--no-baseline"]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "DET006" in out

    def test_missing_path_exits_two(self, tmp_path):
        assert main([str(tmp_path / "nope.py")]) == EXIT_USAGE

    def test_unknown_rule_select_raises_usage(self, tmp_path):
        target = write_module(tmp_path, CLEAN_SOURCE)
        with pytest.raises(KeyError):
            main([str(target), "--select", "NOPE999", "--no-baseline"])

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_OK
        out = capsys.readouterr().out
        for family_member in ("DET001", "UNIT001", "API001", "WS001",
                              "FLOW001", "FLOW004"):
            assert family_member in out


class TestJsonReport:
    def test_schema_of_failing_run(self, tmp_path, capsys):
        target = write_module(tmp_path, DIRTY_SOURCE)
        code = main([str(target), "--format", "json", "--no-baseline"])
        assert code == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION
        assert payload["ok"] is False
        assert payload["counts"]["new"] == len(payload["findings"]) > 0
        for finding in payload["findings"]:
            assert set(finding) == {
                "rule", "path", "line", "col", "message", "snippet",
                "flow_path",
            }
            assert isinstance(finding["line"], int)
        assert payload["rules_run"] == sorted(payload["rules_run"])

    def test_json_is_deterministic(self, tmp_path, capsys):
        target = write_module(tmp_path, DIRTY_SOURCE)
        main([str(target), "--format", "json", "--no-baseline"])
        first = capsys.readouterr().out
        main([str(target), "--format", "json", "--no-baseline"])
        assert capsys.readouterr().out == first


class TestSuppressionComments:
    def test_inline_ignore_silences_named_rule(self, tmp_path, capsys):
        target = write_module(
            tmp_path,
            """
            import random

            def jitter():
                return random.random()  # repro: ignore[DET001]
            """,
        )
        assert main([str(target), "--no-baseline"]) == EXIT_OK
        assert "1 suppressed inline" in capsys.readouterr().out

    def test_ignore_of_other_rule_does_not_silence(self, tmp_path):
        target = write_module(
            tmp_path,
            """
            import random

            def jitter():
                return random.random()  # repro: ignore[DET002]
            """,
        )
        assert main([str(target), "--no-baseline"]) == EXIT_FINDINGS

    def test_bare_ignore_silences_everything_on_line(self, tmp_path):
        target = write_module(
            tmp_path,
            """
            import random

            def jitter(items=[]):  # repro: ignore
                return random.random()  # repro: ignore
            """,
        )
        assert main([str(target), "--no-baseline"]) == EXIT_OK

    def test_ignore_inside_string_literal_is_inert(self, tmp_path):
        target = write_module(
            tmp_path,
            """
            import random

            DOC = "use  # repro: ignore[DET001]  to suppress"

            def jitter():
                return random.random()
            """,
        )
        assert main([str(target), "--no-baseline"]) == EXIT_FINDINGS


class TestBaselineRoundTrip:
    def test_capture_then_clean_then_stale(self, tmp_path, capsys):
        target = write_module(tmp_path, DIRTY_SOURCE)
        baseline = tmp_path / "baseline.json"

        # 1. introduce findings, capture them
        assert main([
            str(target), "--write-baseline",
            "--baseline", str(baseline),
            "--reason", "legacy jitter helper, scheduled for removal",
        ]) == EXIT_OK
        capsys.readouterr()
        recorded = json.loads(baseline.read_text())
        assert recorded["version"] == 1
        assert len(recorded["findings"]) >= 2
        assert all(
            e["reason"] == "legacy jitter helper, scheduled for removal"
            for e in recorded["findings"]
        )

        # 2. re-run against the baseline: clean
        assert main([
            str(target), "--baseline", str(baseline),
        ]) == EXIT_OK
        assert "baselined" in capsys.readouterr().out

        # 3. fix the code: baseline entries go stale but run stays green...
        write_module(tmp_path, CLEAN_SOURCE)
        assert main([
            str(target), "--baseline", str(baseline),
        ]) == EXIT_OK
        assert "stale baseline entry" in capsys.readouterr().out

        # ...unless strictness is requested.
        assert main([
            str(target), "--baseline", str(baseline), "--strict-baseline",
        ]) == EXIT_FINDINGS

    def test_second_occurrence_of_baselined_pattern_fails(self, tmp_path, capsys):
        target = write_module(tmp_path, DIRTY_SOURCE)
        baseline = tmp_path / "baseline.json"
        assert main([
            str(target), "--write-baseline", "--baseline", str(baseline),
        ]) == EXIT_OK
        capsys.readouterr()

        doubled = DIRTY_SOURCE + textwrap.dedent(
            """
            def jitter_again(items=[]):
                items.append(random.random())
                return items
            """
        )
        write_module(tmp_path, doubled)
        assert main([
            str(target), "--baseline", str(baseline),
        ]) == EXIT_FINDINGS

    def test_corrupt_baseline_is_usage_error(self, tmp_path):
        target = write_module(tmp_path, CLEAN_SOURCE)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"version": 99, "findings": []}))
        assert main([
            str(target), "--baseline", str(baseline),
        ]) == EXIT_USAGE


class TestUnreadableSources:
    def test_non_utf8_file_exits_two(self, tmp_path, capsys):
        target = tmp_path / "latin.py"
        target.write_bytes(b"# caf\xe9\nx = 1\n")
        assert main([str(target), "--no-baseline"]) == EXIT_USAGE
        assert "cannot decode" in capsys.readouterr().err

    def test_non_utf8_file_in_directory_exits_two(self, tmp_path, capsys):
        write_module(tmp_path, CLEAN_SOURCE)
        (tmp_path / "binary.py").write_bytes(b"\xff\xfe\x00bad")
        assert main([str(tmp_path), "--no-baseline"]) == EXIT_USAGE
        assert "error" in capsys.readouterr().err

    def test_unparsable_file_exits_two(self, tmp_path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n")
        assert main([str(target), "--no-baseline"]) == EXIT_USAGE
        assert "cannot parse" in capsys.readouterr().err


class TestStaleSuppressions:
    def test_stale_named_suppression_reported_not_gating(self, tmp_path, capsys):
        target = write_module(
            tmp_path,
            """
            def quiet():
                return 1  # repro: ignore[DET001]
            """,
        )
        assert main([str(target), "--no-baseline"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "META001" in out
        assert "stale suppression" in out
        assert "1 stale suppression(s)" in out

    def test_strict_suppressions_gates(self, tmp_path):
        target = write_module(
            tmp_path,
            """
            def quiet():
                return 1  # repro: ignore[DET001]
            """,
        )
        assert main([
            str(target), "--no-baseline", "--strict-suppressions",
        ]) == EXIT_FINDINGS

    def test_active_suppression_is_not_stale(self, tmp_path, capsys):
        target = write_module(
            tmp_path,
            """
            import random

            def jitter():
                return random.random()  # repro: ignore[DET001]
            """,
        )
        assert main([
            str(target), "--no-baseline", "--strict-suppressions",
        ]) == EXIT_OK
        assert "META001" not in capsys.readouterr().out

    def test_named_suppression_not_judged_under_foreign_select(
        self, tmp_path
    ):
        # DET001 did not run, so its suppression cannot be called stale.
        target = write_module(
            tmp_path,
            """
            def quiet():
                return 1  # repro: ignore[DET001]
            """,
        )
        assert main([
            str(target), "--no-baseline", "--select", "DET002",
            "--strict-suppressions",
        ]) == EXIT_OK

    def test_bare_suppression_not_judged_under_select_subset(self, tmp_path):
        target = write_module(
            tmp_path,
            """
            import random

            def jitter():
                return random.random()  # repro: ignore
            """,
        )
        # Under the full rule set the comment is consumed by DET001; under
        # a subset that cannot fire it must not be reported stale either.
        assert main([
            str(target), "--no-baseline", "--select", "UNIT001",
            "--strict-suppressions",
        ]) == EXIT_OK

    def test_stale_bare_suppression_under_full_rules(self, tmp_path, capsys):
        target = write_module(
            tmp_path,
            """
            def quiet():
                return 1  # repro: ignore
            """,
        )
        assert main([
            str(target), "--no-baseline", "--strict-suppressions",
        ]) == EXIT_FINDINGS
        assert "bare" in capsys.readouterr().out


class TestSelfAnalysis:
    REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

    def test_shipped_tree_is_clean_with_checked_in_baseline(self, capsys):
        baseline = self.REPO_SRC.parents[1] / "analysis-baseline.json"
        argv = [str(self.REPO_SRC)]
        if baseline.exists():
            argv += ["--baseline", str(baseline)]
        else:
            argv += ["--no-baseline"]
        assert main(argv) == EXIT_OK

    def test_every_rule_family_ran(self, capsys):
        assert main([str(self.REPO_SRC), "--format", "json", "--no-baseline"]) == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        families = {rule_id[:3] for rule_id in payload["rules_run"]}
        assert {"DET", "UNI", "API", "WS0"} <= families
        assert payload["files_scanned"] > 80
