"""SARIF 2.1.0 reporter: structure, schema validation, CLI plumbing."""

import json
import textwrap

from repro.analysis.cli import EXIT_FINDINGS, EXIT_OK, main
from repro.analysis.reporters import SARIF_SCHEMA_URI, SARIF_VERSION

#: A minimal JSON-Schema subset of SARIF 2.1.0 covering what CI's
#: code-scanning upload actually consumes.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["$schema", "version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name", "rules"],
                                "properties": {
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": [
                                                "id", "name",
                                                "shortDescription",
                                            ],
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": [
                                "ruleId", "level", "message", "locations",
                            ],
                            "properties": {
                                "level": {
                                    "enum": ["note", "warning", "error"],
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "minItems": 1,
                                    "items": {
                                        "type": "object",
                                        "required": ["physicalLocation"],
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}

DIRTY_SOURCE = """
import random

def jitter(items=[]):
    items.append(random.random())
    return items
"""


def write_module(tmp_path, source, name="sample.py"):
    target = tmp_path / name
    target.write_text(textwrap.dedent(source))
    return target


def run_sarif(tmp_path, capsys, extra=()):
    target = write_module(tmp_path, DIRTY_SOURCE)
    code = main([str(target), "--format", "sarif", "--no-baseline", *extra])
    return code, json.loads(capsys.readouterr().out)


class TestSarifStructure:
    def test_log_shape_and_schema(self, tmp_path, capsys):
        code, log = run_sarif(tmp_path, capsys)
        assert code == EXIT_FINDINGS
        assert log["$schema"] == SARIF_SCHEMA_URI
        assert log["version"] == SARIF_VERSION
        assert len(log["runs"]) == 1

        try:
            import jsonschema
        except ImportError:
            jsonschema = None
        if jsonschema is not None:
            jsonschema.validate(log, SARIF_SUBSET_SCHEMA)
        # Structural fallback so the test still bites without jsonschema.
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-analysis"
        for result in run["results"]:
            assert result["level"] in ("note", "warning", "error")
            assert result["message"]["text"]
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"]
            assert location["region"]["startLine"] >= 1
            assert location["region"]["startColumn"] >= 1

    def test_rule_metadata_and_indices_agree(self, tmp_path, capsys):
        _, log = run_sarif(tmp_path, capsys)
        run = log["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        ids = [rule["id"] for rule in rules]
        assert ids == sorted(ids)
        for result in run["results"]:
            assert result["ruleId"] in ids
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_new_findings_are_errors(self, tmp_path, capsys):
        _, log = run_sarif(tmp_path, capsys)
        levels = {r["ruleId"]: r["level"] for r in log["runs"][0]["results"]}
        assert levels["DET001"] == "error"
        assert levels["DET006"] == "error"

    def test_baselined_findings_carry_suppressions(self, tmp_path, capsys):
        target = write_module(tmp_path, DIRTY_SOURCE)
        baseline = tmp_path / "baseline.json"
        assert main([
            str(target), "--write-baseline", "--baseline", str(baseline),
        ]) == EXIT_OK
        capsys.readouterr()
        assert main([
            str(target), "--format", "sarif", "--baseline", str(baseline),
        ]) == EXIT_OK
        log = json.loads(capsys.readouterr().out)
        results = log["runs"][0]["results"]
        assert results, "baselined findings must still be reported"
        for result in results:
            assert result["level"] == "note"
            assert result["suppressions"][0]["kind"] == "external"

    def test_stale_suppressions_are_warnings(self, tmp_path, capsys):
        target = write_module(
            tmp_path,
            """
            def quiet():
                return 1  # repro: ignore[DET001]
            """,
        )
        assert main([
            str(target), "--format", "sarif", "--no-baseline",
        ]) == EXIT_OK
        log = json.loads(capsys.readouterr().out)
        results = log["runs"][0]["results"]
        assert len(results) == 1
        assert results[0]["ruleId"] == "META001"
        assert results[0]["level"] == "warning"

    def test_sarif_is_deterministic(self, tmp_path, capsys):
        target = write_module(tmp_path, DIRTY_SOURCE)
        main([str(target), "--format", "sarif", "--no-baseline"])
        first = capsys.readouterr().out
        main([str(target), "--format", "sarif", "--no-baseline"])
        assert capsys.readouterr().out == first
