"""Positive/negative fixtures for the worker-safety rules."""


def rules_hit(findings):
    return {f.rule for f in findings}


class TestWS001UnpicklableTaskArgument:
    def test_flags_lambda_in_task_payload(self, check):
        findings = check(
            """
            def submit(EvalTask, spec):
                return EvalTask(evaluator=spec, reduce=lambda r: r.bips)
            """,
            select=["WS001"],
        )
        assert rules_hit(findings) == {"WS001"}

    def test_flags_locally_defined_callable(self, check):
        findings = check(
            """
            def submit(ChipBuildTask, seed):
                def build():
                    return seed
                return ChipBuildTask(build)
            """,
            select=["WS001"],
        )
        assert rules_hit(findings) == {"WS001"}

    def test_allows_module_level_values(self, check):
        findings = check(
            """
            def reduce_outcome(result):
                return result.bips

            def submit(EvalTask, spec):
                return EvalTask(evaluator=spec, reduce=reduce_outcome)
            """,
            select=["WS001"],
        )
        assert findings == []


class TestWS002UnpicklablePoolCallable:
    def test_flags_lambda_at_pool_map(self, check):
        findings = check(
            """
            def fan_out(runner, tasks):
                return runner.map(lambda t: t.run(), tasks)
            """,
            select=["WS002"],
        )
        assert rules_hit(findings) == {"WS002"}

    def test_flags_nested_def_at_submit(self, check):
        findings = check(
            """
            def fan_out(executor, tasks):
                def run_one(task):
                    return task.run()
                return [executor.submit(run_one, t) for t in tasks]
            """,
            select=["WS002"],
        )
        assert rules_hit(findings) == {"WS002"}

    def test_allows_module_level_function(self, check):
        findings = check(
            """
            def run_one(task):
                return task.run()

            def fan_out(runner, tasks):
                return runner.map(run_one, tasks)
            """,
            select=["WS002"],
        )
        assert findings == []

    def test_allows_sorted_key_lambdas(self, check):
        findings = check(
            """
            def order(points):
                return sorted(points, key=lambda p: p.retention_ns)
            """,
            select=["WS002"],
        )
        assert findings == []
