"""Positive/negative fixtures for every determinism rule."""


def rules_hit(findings):
    return {f.rule for f in findings}


class TestDET001RandomModule:
    def test_flags_global_random_call(self, check):
        findings = check(
            """
            import random

            def jitter():
                return random.random()
            """,
            select=["DET001"],
        )
        assert rules_hit(findings) == {"DET001"}

    def test_flags_from_import_call(self, check):
        findings = check(
            """
            from random import randint

            def pick():
                return randint(0, 3)
            """,
            select=["DET001"],
        )
        assert rules_hit(findings) == {"DET001"}

    def test_allows_seeded_random_instance(self, check):
        findings = check(
            """
            import random

            def make_rng(seed):
                return random.Random(seed)
            """,
            select=["DET001"],
        )
        assert findings == []

    def test_allows_unrelated_attribute_named_random(self, check):
        findings = check(
            """
            def draw(rng):
                return rng.random()
            """,
            select=["DET001"],
        )
        assert findings == []


class TestDET002LegacyNumpyRandom:
    def test_flags_legacy_api(self, check):
        findings = check(
            """
            import numpy as np

            def noise(n):
                return np.random.normal(size=n)
            """,
            select=["DET002"],
        )
        assert rules_hit(findings) == {"DET002"}

    def test_flags_unseeded_default_rng(self, check):
        findings = check(
            """
            import numpy as np

            def rng():
                return np.random.default_rng()
            """,
            select=["DET002"],
        )
        assert rules_hit(findings) == {"DET002"}

    def test_allows_seeded_default_rng(self, check):
        findings = check(
            """
            import numpy as np

            def rng(seed):
                return np.random.default_rng(seed)
            """,
            select=["DET002"],
        )
        assert findings == []


class TestDET003WallClock:
    def test_flags_time_time(self, check):
        findings = check(
            """
            import time

            def stamp():
                return time.time()
            """,
            select=["DET003"],
        )
        assert rules_hit(findings) == {"DET003"}

    def test_flags_datetime_now(self, check):
        findings = check(
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
            select=["DET003"],
        )
        assert rules_hit(findings) == {"DET003"}

    def test_allows_perf_counter(self, check):
        findings = check(
            """
            import time

            def elapsed(start):
                return time.perf_counter() - start
            """,
            select=["DET003"],
        )
        assert findings == []


class TestDET004UnorderedIteration:
    def test_flags_set_literal_iteration(self, check):
        findings = check(
            """
            def schemes():
                out = []
                for name in {"lru", "dsp"}:
                    out.append(name)
                return out
            """,
            select=["DET004"],
        )
        assert rules_hit(findings) == {"DET004"}

    def test_flags_set_call_in_comprehension(self, check):
        findings = check(
            """
            def names(raw):
                return [n for n in set(raw)]
            """,
            select=["DET004"],
        )
        assert rules_hit(findings) == {"DET004"}

    def test_flags_bare_listdir(self, check):
        findings = check(
            """
            import os

            def entries(path):
                return os.listdir(path)
            """,
            select=["DET004"],
        )
        assert rules_hit(findings) == {"DET004"}

    def test_allows_sorted_wrapping(self, check):
        findings = check(
            """
            import os

            def entries(path, raw):
                ordered = sorted(os.listdir(path))
                return [n for n in sorted(set(raw))] + ordered
            """,
            select=["DET004"],
        )
        assert findings == []


class TestDET005WorkerEnvRead:
    def test_flags_environ_in_engine(self, check):
        findings = check(
            """
            import os

            def workers():
                return int(os.environ.get("WORKERS", "1"))
            """,
            select=["DET005"],
            module="repro.engine.sample",
        )
        assert rules_hit(findings) == {"DET005"}

    def test_flags_getenv_and_subscript_in_kernel(self, check):
        findings = check(
            """
            import os

            def knobs():
                return os.getenv("A"), os.environ["B"]
            """,
            select=["DET005"],
            module="repro.core.batcheval",
        )
        assert len(findings) == 2

    def test_ignores_modules_outside_scope(self, check):
        findings = check(
            """
            import os

            def knobs():
                return os.getenv("A")
            """,
            select=["DET005"],
            module="repro.experiments.sample",
        )
        assert findings == []


class TestDET006MutableDefault:
    def test_flags_list_default(self, check):
        findings = check(
            """
            def collect(items=[]):
                return items
            """,
            select=["DET006"],
        )
        assert rules_hit(findings) == {"DET006"}

    def test_flags_dict_call_default(self, check):
        findings = check(
            """
            def collect(*, table=dict()):
                return table
            """,
            select=["DET006"],
        )
        assert rules_hit(findings) == {"DET006"}

    def test_allows_none_sentinel(self, check):
        findings = check(
            """
            def collect(items=None):
                return items or []
            """,
            select=["DET006"],
        )
        assert findings == []
