"""Variable-latency 6T baseline (related-work comparison)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.technology import NODE_32NM
from repro.variation import VariationParams
from repro.array import ChipSampler
from repro.core.variable_latency import evaluate_variable_latency
from repro.workloads import get_profile


@pytest.fixture(scope="module")
def typical_chip():
    sampler = ChipSampler(NODE_32NM, VariationParams.typical(), seed=700)
    return sampler.sample_sram_chip()


@pytest.fixture(scope="module")
def severe_chip():
    sampler = ChipSampler(NODE_32NM, VariationParams.severe(), seed=701)
    return sampler.sample_sram_chip()


class TestEvaluation:
    def test_runs_at_nominal_frequency(self, typical_chip):
        result = evaluate_variable_latency(typical_chip, get_profile("gcc"))
        assert result.keeps_nominal_frequency

    def test_fractions_partition(self, typical_chip):
        result = evaluate_variable_latency(typical_chip, get_profile("gcc"))
        assert 0.0 <= result.slow_line_fraction <= 1.0
        assert 0.0 <= result.disabled_line_fraction <= 1.0
        assert (
            result.slow_line_fraction + result.disabled_line_fraction <= 1.0
        )

    def test_beats_frequency_binning_on_typical_chips(self, typical_chip):
        """The variable-latency idea's selling point: a 15% frequency loss
        becomes a sub-5% latency cost."""
        result = evaluate_variable_latency(typical_chip, get_profile("gcc"))
        assert result.normalized_performance > typical_chip.normalized_frequency

    def test_severe_worse_than_typical_on_average(self):
        profile = get_profile("gcc")
        means = {}
        for name, params in (
            ("typical", VariationParams.typical()),
            ("severe", VariationParams.severe()),
        ):
            sampler = ChipSampler(NODE_32NM, params, seed=702)
            perfs = [
                evaluate_variable_latency(chip, profile).normalized_performance
                for chip in sampler.sample_sram_chips(8)
            ]
            means[name] = float(np.mean(perfs))
        assert means["severe"] <= means["typical"] + 0.005

    def test_slow_fraction_matches_chip_accessor(self, typical_chip):
        result = evaluate_variable_latency(typical_chip, get_profile("gcc"))
        budget = NODE_32NM.cycle_time
        expected_beyond_budget = typical_chip.slow_line_fraction(budget)
        assert (
            result.slow_line_fraction + result.disabled_line_fraction
            == pytest.approx(expected_beyond_budget)
        )

    def test_requires_per_line_data(self, typical_chip):
        from repro.array.chip import SRAMChipSample

        stripped = SRAMChipSample(
            node=typical_chip.node,
            cell_label=typical_chip.cell_label,
            chip_id=0,
            worst_access_time=typical_chip.worst_access_time,
            nominal_access_time=typical_chip.nominal_access_time,
            leakage_power=typical_chip.leakage_power,
            golden_leakage_power=typical_chip.golden_leakage_power,
            flip_count=0,
            total_cells=typical_chip.total_cells,
        )
        with pytest.raises(ConfigurationError):
            evaluate_variable_latency(stripped, get_profile("gcc"))


class TestChipAccessor:
    def test_slow_line_fraction_monotone_in_budget(self, typical_chip):
        tight = typical_chip.slow_line_fraction(150e-12)
        loose = typical_chip.slow_line_fraction(300e-12)
        assert tight >= loose

    def test_worst_access_consistent(self, typical_chip):
        assert float(
            np.max(typical_chip.access_time_by_line)
        ) == pytest.approx(typical_chip.worst_access_time)

    def test_budget_validation(self, typical_chip):
        with pytest.raises(ConfigurationError):
            typical_chip.slow_line_fraction(0.0)
