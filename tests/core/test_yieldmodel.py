"""Yield model and chip binning."""

import pytest

from repro.errors import ConfigurationError
from repro.technology import NODE_32NM
from repro.variation import VariationParams
from repro.array import ChipSampler
from repro.core import YieldModel


@pytest.fixture(scope="module")
def severe_chips():
    sampler = ChipSampler(NODE_32NM, VariationParams.severe(), seed=400)
    return sampler.sample_3t1d_chips(24)


@pytest.fixture(scope="module")
def model(severe_chips):
    return YieldModel(severe_chips)


class TestReport:
    def test_fields_consistent(self, model, severe_chips):
        report = model.report()
        assert report.n_chips == len(severe_chips)
        assert 0.0 <= report.discard_rate_global <= 1.0
        assert (
            report.median_dead_line_fraction
            <= report.p90_dead_line_fraction
            <= report.max_dead_line_fraction
        )

    def test_severe_has_high_discard(self, model):
        # Paper: ~80% of chips discarded under the global scheme.
        assert model.report().discard_rate_global > 0.5

    def test_str_renders(self, model):
        assert "discard" in str(model.report())


class TestPicks:
    def test_ordering(self, model):
        good, median, bad = model.pick_good_median_bad()
        assert model.chip_quality(good) >= model.chip_quality(median)
        assert model.chip_quality(median) >= model.chip_quality(bad)

    def test_bad_chip_has_more_dead_lines(self, model):
        good, _, bad = model.pick_good_median_bad()
        assert model.dead_line_fraction(bad) >= model.dead_line_fraction(good)

    def test_quality_caps_at_reuse_horizon(self, model, severe_chips):
        chip = severe_chips[0]
        horizon = 6000.0 / chip.node.frequency
        assert model.chip_quality(chip) <= horizon

    def test_percentile_picks_avoid_extremes(self, model, severe_chips):
        _, _, bad = model.pick_good_median_bad()
        worst = min(severe_chips, key=model.chip_quality)
        assert model.chip_quality(bad) >= model.chip_quality(worst)


class TestDeadAndDiscard:
    def test_dead_uses_counter_step(self, model, severe_chips):
        chip = severe_chips[0]
        # Fraction must lie between strictly-zero-retention and a generous
        # 1us threshold.
        strict = chip.dead_line_fraction(0.0)
        generous = chip.dead_line_fraction(1e-6)
        measured = model.dead_line_fraction(chip)
        assert strict <= measured <= generous

    def test_discard_matches_pass_time(self, model, severe_chips):
        for chip in severe_chips[:5]:
            pass_seconds = (
                chip.geometry.refresh_cycles_full_pass / chip.node.frequency
            )
            assert model.is_discarded_global(chip) == (
                chip.chip_retention_time < pass_seconds
            )

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            YieldModel([])
