"""The batched evaluation kernel: bit-identity and edge semantics."""

import numpy as np
import pytest

from repro.errors import (
    ChipDiscardedError,
    ConfigurationError,
    SimulationError,
)
from repro.technology import NODE_32NM
from repro.variation import VariationParams
from repro.array import ChipSampler
from repro.cache import CacheConfig, RetentionAwareCache
from repro.cache.refresh import NoRefresh, PartialRefresh
from repro.core import (
    Cache3T1DArchitecture,
    Evaluator,
    KernelSupport,
    LINE_LEVEL_SCHEMES,
    SCHEME_GLOBAL,
    TraceArtifacts,
    evaluate,
    evaluate_many,
    kernel_support,
    simulate_trace,
)
from repro.workloads.generator import MemoryTrace

ALL_SCHEMES = (SCHEME_GLOBAL,) + LINE_LEVEL_SCHEMES


@pytest.fixture(scope="module")
def kernel_evaluator():
    return Evaluator(NODE_32NM, n_references=1200, seed=11)


@pytest.fixture(scope="module")
def controller_evaluator():
    return Evaluator(
        NODE_32NM, n_references=1200, seed=11, use_batch_kernel=False
    )


@pytest.fixture(scope="module")
def chips():
    typical = ChipSampler(
        NODE_32NM, VariationParams.typical(), seed=20
    ).sample_3t1d_chip()
    severe = ChipSampler(
        NODE_32NM, VariationParams.severe(), seed=21
    ).sample_3t1d_chip()
    return [typical, severe]


def _evaluate(evaluator, chip, scheme):
    try:
        return evaluator.evaluate(
            Cache3T1DArchitecture(chip, scheme, config=evaluator.config)
        )
    except ChipDiscardedError:
        return None


class TestBitIdentity:
    """evaluate_many == RetentionAwareCache on every scheme x benchmark."""

    @pytest.mark.parametrize(
        "scheme", ALL_SCHEMES, ids=lambda s: s.name
    )
    def test_scheme_identical_on_full_suite(
        self, scheme, chips, kernel_evaluator, controller_evaluator
    ):
        for chip in chips:
            via_kernel = _evaluate(kernel_evaluator, chip, scheme)
            via_controller = _evaluate(controller_evaluator, chip, scheme)
            assert (via_kernel is None) == (via_controller is None)
            if via_kernel is None:
                continue
            assert (
                set(via_kernel.results)
                == set(kernel_evaluator.benchmarks)
            )
            for bench in via_kernel.results:
                a = via_kernel.results[bench]
                b = via_controller.results[bench]
                assert a.stats == b.stats, (scheme.name, bench)
                assert (
                    a.normalized_performance == b.normalized_performance
                ), (scheme.name, bench)
                assert a.ipc == b.ipc
                assert a.dynamic_power_watts == b.dynamic_power_watts
                assert (
                    a.dynamic_power_normalized == b.dynamic_power_normalized
                )

    def test_baseline_stats_identical(
        self, kernel_evaluator, controller_evaluator
    ):
        for bench in kernel_evaluator.benchmarks:
            assert kernel_evaluator.baseline_stats(
                bench
            ) == controller_evaluator.baseline_stats(bench)


class _ThirdPartyRefresh(NoRefresh):
    """A refresh policy the kernels were never specialized for."""

    name = "third-party"


class TestKernelSupport:
    """The typed path classifier and its deprecated boolean shims."""

    def test_every_paper_scheme_supported(self, chips, kernel_evaluator):
        for scheme in ALL_SCHEMES:
            cache = Cache3T1DArchitecture(
                chips[0], scheme, config=kernel_evaluator.config
            ).build_cache()
            support = kernel_support(cache)
            assert support.supported
            assert support.reason is None
            if scheme.name.startswith("RSP"):
                assert support.path == "timeline"
            else:
                assert support.path == "flattened"

    def test_real_l2_takes_timeline_path(self):
        cache = RetentionAwareCache(CacheConfig(real_l2=True))
        support = kernel_support(cache)
        assert support == KernelSupport(True, "timeline")

    def test_online_refresh_takes_timeline_path(self):
        cache = RetentionAwareCache(
            CacheConfig(), refresh=PartialRefresh(), online_refresh=True
        )
        assert cache.refresh_engine is not None
        assert kernel_support(cache) == KernelSupport(True, "timeline")

    def test_third_party_refresh_keeps_event_controller(self):
        cache = RetentionAwareCache(
            CacheConfig(), refresh=_ThirdPartyRefresh()
        )
        support = kernel_support(cache)
        assert not support.supported
        assert support.path == "event"
        assert "closed-form" in support.reason

    def test_simulate_trace_rejects_unsupported(self, kernel_evaluator):
        cache = RetentionAwareCache(
            CacheConfig(), refresh=_ThirdPartyRefresh()
        )
        artifacts = kernel_evaluator.trace_artifacts(
            kernel_evaluator.benchmarks[0],
            cache.config.geometry.n_sets,
        )
        with pytest.raises(ConfigurationError):
            simulate_trace(cache, artifacts)

    def test_facade_exports_kernel_support(self):
        import repro

        assert repro.kernel_support is kernel_support
        assert repro.KernelSupport is KernelSupport

    def test_deprecated_probe_shims_are_gone(self):
        # PR-6 deprecated the boolean kernel_supports /
        # kernel_fallback_reason probes; the cycle is complete and the
        # names must no longer be importable anywhere.
        import repro
        import repro.core
        import repro.core.batcheval as batcheval

        for module in (repro, repro.core, batcheval):
            assert not hasattr(module, "kernel_supports")
            assert not hasattr(module, "kernel_fallback_reason")
            assert "kernel_supports" not in module.__all__
            assert "kernel_fallback_reason" not in module.__all__

    def test_import_repro_emits_no_deprecation_warnings(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning",
             "-c", "import repro"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr


def _micro_trace(cycles, addresses, writes):
    return MemoryTrace(
        cycles=np.asarray(cycles, dtype=np.int64),
        line_addresses=np.asarray(addresses, dtype=np.int64),
        is_write=np.asarray(writes, dtype=bool),
        name="micro",
        instructions=len(cycles),
    )


def _run_both(grid, replacement, refresh, trace, config=None):
    """(controller stats, kernel stats) on identical fresh caches."""
    config = config or CacheConfig()

    def build():
        return RetentionAwareCache(
            config,
            retention_cycles=grid,
            replacement=replacement,
            refresh=refresh,
            quantize=False,
        )

    via_controller = build().run_trace(
        trace.cycles, trace.line_addresses, trace.is_write
    )
    via_kernel = simulate_trace(
        build(), TraceArtifacts.from_trace(trace, config.geometry.n_sets)
    )
    return via_controller, via_kernel


class TestEdgeSemantics:
    """Controller corner cases the kernel must reproduce exactly."""

    def test_all_dead_set_dsp_bypasses(self):
        config = CacheConfig()
        geometry = config.geometry
        grid = np.full((geometry.n_sets, geometry.ways), 100000, np.int64)
        grid[0, :] = 0  # every line in set 0 is dead
        trace = _micro_trace(
            cycles=range(0, 40, 2),
            addresses=[w * geometry.n_sets for w in range(5)] * 4,
            writes=[False, True] * 10,
        )
        ctrl, kern = _run_both(grid, "DSP", NoRefresh(), trace)
        assert ctrl == kern
        assert kern.misses_dead_bypass == len(trace)

    def test_all_dead_set_lru_expires_immediately(self):
        config = CacheConfig()
        geometry = config.geometry
        grid = np.full((geometry.n_sets, geometry.ways), 100000, np.int64)
        grid[0, :] = 0
        trace = _micro_trace(
            cycles=range(0, 40, 2),
            addresses=[w * geometry.n_sets for w in range(5)] * 4,
            writes=[False, True] * 10,
        )
        ctrl, kern = _run_both(grid, "LRU", NoRefresh(), trace)
        assert ctrl == kern
        # LRU keeps filling the dead lines; every reference misses.
        assert kern.hits == 0
        assert kern.misses == len(trace)

    def test_write_through_mode(self):
        config = CacheConfig(write_back=False)
        geometry = config.geometry
        grid = np.full((geometry.n_sets, geometry.ways), 500, np.int64)
        trace = _micro_trace(
            cycles=range(0, 40, 2),
            addresses=[w * geometry.n_sets for w in range(5)] * 4,
            writes=[False, True] * 10,
        )
        ctrl, kern = _run_both(grid, "LRU", NoRefresh(), trace, config)
        assert ctrl == kern
        assert kern.write_throughs == 10
        assert kern.writebacks == 0

    @pytest.mark.parametrize("replacement", ["LRU", "DSP"])
    def test_dirty_line_expires_on_referenced_cycle(self, replacement):
        config = CacheConfig()
        geometry = config.geometry
        grid = np.full((geometry.n_sets, geometry.ways), 100000, np.int64)
        grid[0, :] = 50
        # Write fills a dirty line at cycle 0 (lifetime 50); the next
        # reference lands exactly on the expiry cycle, so the sweep must
        # write the line back and reclassify the access as expired-miss.
        trace = _micro_trace(
            cycles=[0, 50, 60], addresses=[0, 0, 0],
            writes=[True, False, True],
        )
        ctrl, kern = _run_both(grid, replacement, NoRefresh(), trace)
        assert ctrl == kern
        assert kern.expiry_writebacks == 1
        assert kern.misses_expired == 1

    def test_partial_refresh_identical_on_micro_trace(self):
        config = CacheConfig()
        geometry = config.geometry
        grid = np.full((geometry.n_sets, geometry.ways), 900, np.int64)
        trace = _micro_trace(
            cycles=range(0, 30000, 250),
            addresses=[w * geometry.n_sets for w in range(6)] * 20,
            writes=[True, False, False] * 40,
        )
        refresh = PartialRefresh(
            threshold_cycles=config.partial_refresh_threshold_cycles
        )
        ctrl, kern = _run_both(grid, "LRU", refresh, trace)
        assert ctrl == kern
        assert kern.line_refreshes > 0


class TestTraceArtifacts:
    def test_set_and_tag_decomposition(self):
        trace = _micro_trace(
            cycles=[0, 1, 2], addresses=[0, 257, 513], writes=[False] * 3
        )
        artifacts = TraceArtifacts.from_trace(trace, 256)
        assert artifacts.set_indices == [0, 1, 1]
        assert artifacts.tags == [0, 1, 2]
        assert artifacts.end_cycle == 2
        assert len(artifacts) == 3

    def test_evaluator_caches_artifacts(self, kernel_evaluator):
        bench = kernel_evaluator.benchmarks[0]
        first = kernel_evaluator.trace_artifacts(bench, 256)
        second = kernel_evaluator.trace_artifacts(bench, 256)
        assert first is second
        assert kernel_evaluator.trace_artifacts(bench, 128) is not first

    def test_set_count_mismatch_rejected(self, kernel_evaluator, chips):
        cache = Cache3T1DArchitecture(
            chips[0], LINE_LEVEL_SCHEMES[0], config=kernel_evaluator.config
        ).build_cache()
        wrong = kernel_evaluator.trace_artifacts(
            kernel_evaluator.benchmarks[0],
            cache.config.geometry.n_sets * 2,
        )
        with pytest.raises(ConfigurationError):
            simulate_trace(cache, wrong)

    def test_used_cache_rejected(self, kernel_evaluator, chips):
        cache = Cache3T1DArchitecture(
            chips[0], LINE_LEVEL_SCHEMES[0], config=kernel_evaluator.config
        ).build_cache()
        artifacts = kernel_evaluator.trace_artifacts(
            kernel_evaluator.benchmarks[0],
            cache.config.geometry.n_sets,
        )
        # The kernel reads only immutable cache state, so reusing it for
        # several kernel runs is fine ...
        assert simulate_trace(cache, artifacts) == simulate_trace(
            cache, artifacts
        )
        # ... but a cache that already ran event-mode accesses is stale.
        cache.run_trace(
            np.asarray([0]), np.asarray([0]), np.asarray([False])
        )
        with pytest.raises(SimulationError):
            simulate_trace(cache, artifacts)


class TestEvaluateMany:
    def test_row_per_chip_column_per_scheme(self, chips, kernel_evaluator):
        schemes = [LINE_LEVEL_SCHEMES[0], "partial-refresh/DSP"]
        rows = evaluate_many(chips, schemes, kernel_evaluator)
        assert len(rows) == len(chips)
        for row in rows:
            assert [e.scheme for e in row] == [
                "no-refresh/LRU", "partial-refresh/DSP",
            ]

    def test_matches_single_evaluate(self, chips, kernel_evaluator):
        scheme = LINE_LEVEL_SCHEMES[0]
        batched = evaluate_many(
            chips[:1], [scheme], kernel_evaluator
        )[0][0]
        single = evaluate(chips[0], scheme, kernel_evaluator)
        assert (
            batched.normalized_performance == single.normalized_performance
        )

    def test_discarded_chip_yields_none(self, kernel_evaluator):
        sampler = ChipSampler(NODE_32NM, VariationParams.severe(), seed=99)
        discarded = None
        for chip in sampler.sample_3t1d_chips(30):
            if _evaluate(kernel_evaluator, chip, SCHEME_GLOBAL) is None:
                discarded = chip
                break
        assert discarded is not None, "expected a global-scheme discard"
        row = evaluate_many(
            [discarded], [SCHEME_GLOBAL, LINE_LEVEL_SCHEMES[0]],
            kernel_evaluator,
        )[0]
        assert row[0] is None
        assert row[1] is not None
        with pytest.raises(ChipDiscardedError):
            evaluate(discarded, SCHEME_GLOBAL, kernel_evaluator)

    def test_bad_suite_rejected(self, chips):
        with pytest.raises(ConfigurationError):
            evaluate_many(chips, [LINE_LEVEL_SCHEMES[0]], suite=object())

    def test_benchmark_subset(self, chips, kernel_evaluator):
        row = evaluate_many(
            chips[:1], [LINE_LEVEL_SCHEMES[0]], kernel_evaluator,
            benchmarks=["gcc", "mcf"],
        )[0]
        assert set(row[0].results) == {"gcc", "mcf"}
