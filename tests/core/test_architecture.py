"""Cache architecture assembly."""

import math

import numpy as np
import pytest

from repro.errors import ChipDiscardedError
from repro.technology import NODE_32NM
from repro.variation import VariationParams
from repro.array import CacheGeometry, ChipSampler
from repro.cache import GlobalRefresh, RetentionAwareCache
from repro.cache.config import CacheConfig
from repro.core import (
    Cache3T1DArchitecture,
    Cache6TArchitecture,
    IdealCacheArchitecture,
    SCHEME_GLOBAL,
    SCHEME_NO_REFRESH_LRU,
    SCHEME_RSP_FIFO,
)


@pytest.fixture(scope="module")
def typical_chip():
    sampler = ChipSampler(NODE_32NM, VariationParams.typical(), seed=300)
    return sampler.sample_3t1d_chip()


@pytest.fixture(scope="module")
def sram_chip():
    sampler = ChipSampler(NODE_32NM, VariationParams.typical(), seed=301)
    return sampler.sample_sram_chip()


class TestCache3T1DArchitecture:
    def test_runs_at_nominal_frequency(self, typical_chip):
        arch = Cache3T1DArchitecture(typical_chip, SCHEME_NO_REFRESH_LRU)
        assert arch.frequency == NODE_32NM.frequency

    def test_retention_converted_to_cycles(self, typical_chip):
        arch = Cache3T1DArchitecture(typical_chip, SCHEME_NO_REFRESH_LRU)
        expected = typical_chip.retention_by_line * NODE_32NM.frequency
        assert np.allclose(arch.retention_cycles_raw, expected)

    def test_counter_spans_chip(self, typical_chip):
        arch = Cache3T1DArchitecture(typical_chip, SCHEME_NO_REFRESH_LRU)
        assert arch.counter.max_cycles >= np.max(arch.retention_cycles_raw)

    def test_build_cache_line_level(self, typical_chip):
        arch = Cache3T1DArchitecture(typical_chip, SCHEME_RSP_FIFO)
        cache = arch.build_cache()
        assert isinstance(cache, RetentionAwareCache)
        assert cache.replacement.name == "RSP-FIFO"

    def test_build_cache_fresh_each_time(self, typical_chip):
        arch = Cache3T1DArchitecture(typical_chip, SCHEME_NO_REFRESH_LRU)
        a = arch.build_cache()
        a.access(0, 1, False)
        b = arch.build_cache()
        assert b.stats.accesses == 0

    def test_global_scheme_on_operable_chip(self, typical_chip):
        arch = Cache3T1DArchitecture(typical_chip, SCHEME_GLOBAL)
        if arch.is_operable():
            cache = arch.build_cache()
            assert isinstance(cache.refresh, GlobalRefresh)

    def test_global_scheme_discards_short_retention_chip(self, typical_chip):
        # Forge a chip whose worst line cannot cover a refresh pass.
        short = typical_chip.retention_by_line.copy()
        short[5] = 100 / NODE_32NM.frequency  # 100 cycles
        chip = typical_chip.__class__(
            node=typical_chip.node,
            geometry=typical_chip.geometry,
            chip_id=999,
            retention_by_line=short,
            leakage_power=typical_chip.leakage_power,
            golden_leakage_power=typical_chip.golden_leakage_power,
        )
        arch = Cache3T1DArchitecture(chip, SCHEME_GLOBAL)
        assert not arch.is_operable()
        with pytest.raises(ChipDiscardedError):
            arch.build_cache()

    def test_line_level_always_operable(self, typical_chip):
        arch = Cache3T1DArchitecture(typical_chip, SCHEME_NO_REFRESH_LRU)
        assert arch.is_operable()

    def test_dead_line_threshold_is_counter_step(self, typical_chip):
        arch = Cache3T1DArchitecture(typical_chip, SCHEME_NO_REFRESH_LRU)
        assert arch.dead_line_threshold_cycles == arch.counter.step_cycles

    def test_associativity_reinterpretation(self, typical_chip):
        config = CacheConfig(geometry=CacheGeometry(ways=8))
        arch = Cache3T1DArchitecture(
            typical_chip, SCHEME_NO_REFRESH_LRU, config=config
        )
        cache = arch.build_cache()
        assert cache.retention_grid.shape == (128, 8)

    def test_power_model_kind(self, typical_chip):
        arch = Cache3T1DArchitecture(typical_chip, SCHEME_NO_REFRESH_LRU)
        assert arch.power_model().cell_kind == "3T1D"


class TestCache6TArchitecture:
    def test_frequency_degraded(self, sram_chip):
        arch = Cache6TArchitecture(sram_chip)
        assert arch.frequency < NODE_32NM.frequency
        assert arch.normalized_frequency < 1.0

    def test_cache_never_expires(self, sram_chip):
        cache = Cache6TArchitecture(sram_chip).build_cache()
        cache.access(0, 42, False)
        assert cache.access(10_000_000, 42, False).name == "HIT"

    def test_power_model_kind(self, sram_chip):
        assert Cache6TArchitecture(sram_chip).power_model().cell_kind == "6T"


class TestIdealCacheArchitecture:
    def test_nominal_frequency(self):
        arch = IdealCacheArchitecture(NODE_32NM)
        assert arch.frequency == NODE_32NM.frequency

    def test_ideal_cache_no_retention(self):
        cache = IdealCacheArchitecture(NODE_32NM).build_cache()
        assert math.isinf(
            cache.refresh.effective_lifetime(1)
        ) or cache.retention_grid.max() > 10 ** 15
