"""Word-level refresh study."""

import pytest

from repro.errors import ConfigurationError
from repro.technology import NODE_32NM
from repro.variation import VariationParams
from repro.array import ChipSampler
from repro.array.chip import DRAM3T1DChipSample
from repro.core.wordlevel import compare_refresh_granularity


@pytest.fixture(scope="module")
def severe_chip():
    sampler = ChipSampler(NODE_32NM, VariationParams.severe(), seed=600)
    # Pick a chip with some weak lines so the comparison is non-trivial.
    chips = sampler.sample_3t1d_chips(6)
    return max(chips, key=lambda c: c.dead_line_fraction(500e-9))


@pytest.fixture(scope="module")
def comparison(severe_chip):
    return compare_refresh_granularity(severe_chip)


class TestComparison:
    def test_word_level_saves_bandwidth(self, comparison):
        assert (
            comparison.word_level.blocked_cycle_fraction
            <= comparison.line_level.blocked_cycle_fraction
        )
        if comparison.weak_lines:
            assert comparison.bandwidth_saving > 0.5

    def test_word_level_saves_energy(self, comparison):
        assert (
            comparison.word_level.energy_per_cycle_joules
            <= comparison.line_level.energy_per_cycle_joules
        )

    def test_counter_hardware_is_8x(self, comparison):
        assert comparison.counter_hardware_ratio == pytest.approx(8.0)

    def test_weak_words_at_most_words_of_weak_lines(self, comparison):
        # Usually ~1 weak word per weak line; never more than 8.
        if comparison.weak_lines:
            assert (
                comparison.weak_words <= 8 * comparison.weak_lines
            )

    def test_refresh_rates_consistent(self, comparison):
        # Word periods are no shorter than their line's period, so the
        # total event rate can rise, but each event is 8x cheaper; net
        # energy must not increase.
        assert comparison.word_level.energy_per_cycle_joules <= (
            comparison.line_level.energy_per_cycle_joules + 1e-18
        )


class TestValidation:
    def test_requires_word_retention(self, severe_chip):
        stripped = DRAM3T1DChipSample(
            node=severe_chip.node,
            geometry=severe_chip.geometry,
            chip_id=severe_chip.chip_id,
            retention_by_line=severe_chip.retention_by_line,
            leakage_power=severe_chip.leakage_power,
            golden_leakage_power=severe_chip.golden_leakage_power,
        )
        with pytest.raises(ConfigurationError):
            compare_refresh_granularity(stripped)

    def test_rejects_bad_threshold(self, severe_chip):
        with pytest.raises(ConfigurationError):
            compare_refresh_granularity(severe_chip, threshold_cycles=0)

    def test_power_conversion(self, comparison):
        power = comparison.line_level.power_watts(NODE_32NM.frequency)
        assert power >= 0.0
