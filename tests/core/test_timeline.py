"""The timeline kernels: RSP/token/L2 bit-identity and edge semantics.

The full-suite identity sweep (all nine schemes x eight benchmarks,
which routes the RSP schemes through these kernels) lives in
``test_batcheval.py``; this module drives the timeline paths directly
on crafted micro-traces where the awkward interleavings -- same-cycle
expiry, refreshes on the warmup boundary, unsustainable retention --
are guaranteed to occur.
"""

import numpy as np
import pytest

from repro.technology import NODE_32NM
from repro.variation import VariationParams
from repro.array import ChipSampler
from repro.cache import CacheConfig, RetentionAwareCache
from repro.cache.refresh import NoRefresh, PartialRefresh
from repro.core import (
    Cache3T1DArchitecture,
    Evaluator,
    TraceArtifacts,
    simulate_trace,
)
from repro.core.schemes import (
    SCHEME_NO_REFRESH_LRU,
    SCHEME_RSP_FIFO,
    SCHEME_RSP_LRU,
)
from repro.workloads.generator import MemoryTrace


def _micro_trace(cycles, addresses, writes, warmup=0):
    cycles = list(cycles)
    return MemoryTrace(
        cycles=np.asarray(cycles, dtype=np.int64),
        line_addresses=np.asarray(list(addresses), dtype=np.int64),
        is_write=np.asarray(list(writes), dtype=bool),
        name="micro",
        instructions=len(cycles),
        warmup_references=warmup,
    )


def _run_both(
    grid, replacement, refresh, trace, config=None, online_refresh=False
):
    """(controller stats, kernel stats) on identical fresh caches."""
    config = config or CacheConfig()

    def build():
        return RetentionAwareCache(
            config,
            retention_cycles=grid,
            replacement=replacement,
            refresh=refresh,
            quantize=False,
            online_refresh=online_refresh,
        )

    via_controller = build().run_trace(
        trace.cycles, trace.line_addresses, trace.is_write,
        warmup_references=trace.warmup_references,
    )
    via_kernel = simulate_trace(
        build(), TraceArtifacts.from_trace(trace, config.geometry.n_sets)
    )
    return via_controller, via_kernel


def _full_grid(retention=100000):
    geometry = CacheConfig().geometry
    return np.full((geometry.n_sets, geometry.ways), retention, np.int64)


def _busy_trace(n_sets, tags=6, repeats=20, stride=250):
    """A reuse-heavy stream in set 0 that exercises hits and evictions."""
    n = tags * repeats
    return _micro_trace(
        cycles=range(0, n * stride, stride),
        addresses=[t * n_sets for t in range(tags)] * repeats,
        writes=[True, False, False] * (n // 3),
    )


class TestTimelineIdentityMicro:
    """Each timeline subsystem against the controller on micro-traces."""

    @pytest.mark.parametrize("replacement", ["RSP-FIFO", "RSP-LRU"])
    def test_rsp_placement_identity(self, replacement):
        geometry = CacheConfig().geometry
        grid = _full_grid()
        # Mixed retention in set 0 so RSP's retention-ordered placement
        # and promotion actually reorder lines.
        grid[0] = [4000, 900, 250000, 60]
        trace = _busy_trace(geometry.n_sets, tags=3, repeats=40)
        ctrl, kern = _run_both(grid, replacement, NoRefresh(), trace)
        assert ctrl == kern
        assert kern.hits > 0
        assert kern.misses > 0

    def test_token_engine_identity(self):
        geometry = CacheConfig().geometry
        grid = _full_grid(3000)
        trace = _busy_trace(geometry.n_sets, tags=3, repeats=40)
        ctrl, kern = _run_both(
            grid, "LRU",
            PartialRefresh(
                threshold_cycles=CacheConfig()
                .partial_refresh_threshold_cycles
            ),
            trace, online_refresh=True,
        )
        assert ctrl == kern
        assert kern.line_refreshes > 0

    def test_real_l2_identity(self):
        config = CacheConfig(real_l2=True)
        geometry = config.geometry
        trace = _busy_trace(geometry.n_sets, tags=8, repeats=15)
        ctrl, kern = _run_both(
            _full_grid(), "LRU", NoRefresh(), trace, config=config
        )
        assert ctrl == kern
        assert kern.l2_accesses > 0
        assert kern.l2_hits > 0

    def test_warmup_split_identity(self):
        geometry = CacheConfig().geometry
        grid = _full_grid()
        grid[0] = [4000, 900, 250000, 60]
        trace = _busy_trace(geometry.n_sets)
        warm = _micro_trace(
            trace.cycles, trace.line_addresses, trace.is_write,
            warmup=len(trace) // 2,
        )
        ctrl, kern = _run_both(grid, "RSP-FIFO", NoRefresh(), warm)
        assert ctrl == kern


class TestTimelineEdges:
    """The interleavings the interval arithmetic must get exactly right."""

    @pytest.mark.parametrize("replacement", ["RSP-FIFO", "RSP-LRU"])
    def test_same_cycle_expiry_vs_access_rsp(self, replacement):
        grid = _full_grid()
        grid[0, :] = 50
        # A dirty fill at cycle 0 (lifetime 50); the next reference lands
        # exactly on the expiry cycle, so the sweep must write the line
        # back and classify the access as an expired miss -- not a hit.
        trace = _micro_trace(
            cycles=[0, 50, 60], addresses=[0, 0, 0],
            writes=[True, False, True],
        )
        ctrl, kern = _run_both(grid, replacement, NoRefresh(), trace)
        assert ctrl == kern
        assert kern.expiry_writebacks == 1
        assert kern.misses_expired == 1

    def test_refresh_on_warmup_boundary(self):
        # Retention 2100 with the paper's 2048-cycle margin means the
        # engine requests a refresh 52 cycles after each fill.  The warmup
        # boundary is placed exactly on that service cycle, so the
        # refresh and the counter reset land on the same reference.
        grid = _full_grid(2100)
        trace = _micro_trace(
            cycles=[0, 52, 100, 2200, 4200],
            addresses=[0, 0, 0, 0, 0],
            writes=[True, False, False, False, False],
            warmup=2,
        )
        ctrl, kern = _run_both(
            grid, "LRU", PartialRefresh(threshold_cycles=6000), trace,
            online_refresh=True,
        )
        assert ctrl == kern
        assert kern.hits > 0

    def test_token_exhaustion_inside_epoch(self):
        geometry = CacheConfig().geometry
        # Retention 2056 <= margin (2048) + refresh op (8): can_sustain
        # is False, so the engine never schedules these lines and they
        # expire mid-epoch even though online refresh is armed.
        grid = _full_grid()
        grid[0, :] = 2056
        trace = _micro_trace(
            cycles=[0, 1000, 3000, 5000],
            addresses=[0, 0, 0, 0],
            writes=[True, False, False, False],
        )
        ctrl, kern = _run_both(
            grid, "LRU", PartialRefresh(threshold_cycles=6000), trace,
            online_refresh=True,
        )
        assert ctrl == kern
        assert kern.line_refreshes == 0
        assert kern.misses_expired > 0


class TestKernelPathReporting:
    """evaluate results carry the replay path each benchmark took."""

    @pytest.fixture(scope="class")
    def evaluator(self):
        return Evaluator(NODE_32NM, n_references=800, seed=11)

    @pytest.fixture(scope="class")
    def chip(self):
        return ChipSampler(
            NODE_32NM, VariationParams.typical(), seed=20
        ).sample_3t1d_chip()

    def test_rsp_reports_timeline(self, evaluator, chip):
        evaluation = evaluator.evaluate(
            Cache3T1DArchitecture(
                chip, SCHEME_RSP_FIFO, config=evaluator.config
            )
        )
        assert set(evaluation.kernel_paths) == set(evaluator.benchmarks)
        assert set(evaluation.kernel_paths.values()) == {"timeline"}

    def test_stationary_reports_flattened(self, evaluator, chip):
        evaluation = evaluator.evaluate(
            Cache3T1DArchitecture(
                chip, SCHEME_NO_REFRESH_LRU, config=evaluator.config
            )
        )
        assert set(evaluation.kernel_paths.values()) == {"flattened"}

    def test_event_mode_reports_event(self, chip):
        slow = Evaluator(
            NODE_32NM, n_references=800, seed=11, use_batch_kernel=False
        )
        evaluation = slow.evaluate(
            Cache3T1DArchitecture(chip, SCHEME_RSP_LRU, config=slow.config)
        )
        assert set(evaluation.kernel_paths.values()) == {"event"}

    def test_baseline_path(self, evaluator):
        assert evaluator.baseline_path(evaluator.benchmarks[0]) in (
            "flattened", "timeline"
        )

    def test_metrics_observer_records_paths(self):
        from repro.engine.events import KernelPathsCollected
        from repro.engine.observer import JSONMetricsObserver

        observer = JSONMetricsObserver()
        observer.handle(KernelPathsCollected(
            label="fig10",
            paths=(("RSP-FIFO/gcc", "timeline"), ("no-refresh/LRU/gcc",
                                                  "flattened")),
        ))
        assert observer.metrics["kernel_paths"] == {
            "RSP-FIFO/gcc": "timeline",
            "no-refresh/LRU/gcc": "flattened",
        }
