"""Benchmark evaluation of architectures."""

import pytest

from repro.errors import ConfigurationError
from repro.technology import NODE_32NM
from repro.variation import VariationParams
from repro.array import ChipSampler
from repro.core import (
    Cache3T1DArchitecture,
    Cache6TArchitecture,
    Evaluator,
    IdealCacheArchitecture,
    SCHEME_GLOBAL,
    SCHEME_NO_REFRESH_LRU,
    SCHEME_RSP_FIFO,
)


@pytest.fixture(scope="module")
def evaluator():
    return Evaluator(NODE_32NM, n_references=3000, seed=9)


@pytest.fixture(scope="module")
def typical_chip():
    return ChipSampler(NODE_32NM, VariationParams.typical(), seed=20).sample_3t1d_chip()


@pytest.fixture(scope="module")
def severe_chip():
    return ChipSampler(NODE_32NM, VariationParams.severe(), seed=21).sample_3t1d_chip()


class TestIdealBaseline:
    def test_normalized_to_one(self, evaluator):
        result = evaluator.evaluate_benchmark(
            IdealCacheArchitecture(NODE_32NM), "gcc"
        )
        assert result.normalized_performance == 1.0
        assert result.dynamic_power_normalized == 1.0

    def test_bips_matches_profile(self, evaluator):
        from repro.workloads import get_profile

        result = evaluator.evaluate_benchmark(
            IdealCacheArchitecture(NODE_32NM), "mesa"
        )
        expected = get_profile("mesa").base_ipc * NODE_32NM.frequency / 1e9
        assert result.bips == pytest.approx(expected)


class TestSRAMChips:
    def test_perf_equals_normalized_frequency(self, evaluator):
        chip = ChipSampler(
            NODE_32NM, VariationParams.typical(), seed=22
        ).sample_sram_chip()
        arch = Cache6TArchitecture(chip)
        result = evaluator.evaluate(arch)
        assert result.normalized_performance == pytest.approx(
            chip.normalized_frequency
        )


class Test3T1DChips:
    def test_line_level_close_to_ideal_on_typical_chip(
        self, evaluator, typical_chip
    ):
        arch = Cache3T1DArchitecture(typical_chip, SCHEME_RSP_FIFO)
        result = evaluator.evaluate(arch)
        assert 0.9 < result.normalized_performance < 1.0

    def test_global_scheme_small_loss_on_typical_chip(
        self, evaluator, typical_chip
    ):
        arch = Cache3T1DArchitecture(typical_chip, SCHEME_GLOBAL)
        if arch.is_operable():
            result = evaluator.evaluate(arch)
            assert result.normalized_performance > 0.95

    def test_rsp_beats_plain_lru_on_severe_chip(self, evaluator, severe_chip):
        lru = evaluator.evaluate(
            Cache3T1DArchitecture(severe_chip, SCHEME_NO_REFRESH_LRU)
        )
        rsp = evaluator.evaluate(
            Cache3T1DArchitecture(severe_chip, SCHEME_RSP_FIFO)
        )
        assert rsp.normalized_performance > lru.normalized_performance

    def test_power_above_ideal(self, evaluator, severe_chip):
        result = evaluator.evaluate(
            Cache3T1DArchitecture(severe_chip, SCHEME_NO_REFRESH_LRU)
        )
        assert result.dynamic_power_normalized > 1.0

    def test_worst_benchmark_reported(self, evaluator, severe_chip):
        result = evaluator.evaluate(
            Cache3T1DArchitecture(severe_chip, SCHEME_NO_REFRESH_LRU)
        )
        name, perf = result.worst_benchmark
        assert name in result.results
        assert perf == min(
            r.normalized_performance for r in result.results.values()
        )

    def test_harmonic_mean_below_best(self, evaluator, severe_chip):
        result = evaluator.evaluate(
            Cache3T1DArchitecture(severe_chip, SCHEME_NO_REFRESH_LRU)
        )
        best = max(
            r.normalized_performance for r in result.results.values()
        )
        assert result.normalized_performance <= best

    def test_benchmark_subset(self, evaluator, typical_chip):
        arch = Cache3T1DArchitecture(typical_chip, SCHEME_NO_REFRESH_LRU)
        result = evaluator.evaluate(arch, benchmarks=["gcc", "mcf"])
        assert set(result.results) == {"gcc", "mcf"}


class TestEvaluatorCaching:
    def test_traces_cached(self, evaluator):
        assert evaluator.trace("gcc") is evaluator.trace("gcc")

    def test_baseline_stats_cached(self, evaluator):
        assert evaluator.baseline_stats("gcc") is evaluator.baseline_stats("gcc")

    def test_traces_have_warmup(self, evaluator):
        assert evaluator.trace("gcc").warmup_references == 1024

    def test_rejects_bad_reference_count(self):
        with pytest.raises(ConfigurationError):
            Evaluator(NODE_32NM, n_references=0)


class TestOptionalFidelityModes:
    def test_real_l2_mode_evaluates(self, typical_chip):
        from repro.cache.config import CacheConfig
        from repro.core import SCHEME_RSP_FIFO

        config = CacheConfig(real_l2=True)
        evaluator = Evaluator(
            NODE_32NM, config=config, n_references=2000, seed=10
        )
        result = evaluator.evaluate(
            Cache3T1DArchitecture(typical_chip, SCHEME_RSP_FIFO, config=config),
            benchmarks=["gcc"],
        )
        stats = result.results["gcc"].stats
        assert stats.l2_hits + stats.l2_misses == stats.misses
        assert 0.0 < result.normalized_performance <= 1.0

    def test_write_through_mode_evaluates(self, typical_chip):
        from repro.cache.config import CacheConfig

        config = CacheConfig(write_back=False)
        evaluator = Evaluator(
            NODE_32NM, config=config, n_references=2000, seed=10
        )
        result = evaluator.evaluate(
            Cache3T1DArchitecture(
                typical_chip, SCHEME_NO_REFRESH_LRU, config=config
            ),
            benchmarks=["gcc"],
        )
        stats = result.results["gcc"].stats
        assert stats.write_throughs > 0
        assert stats.expiry_writebacks == 0


class TestEmptyResultsValidation:
    def test_empty_evaluation_properties_raise(self):
        from repro.core import ChipEvaluation

        empty = ChipEvaluation(scheme="Global", results={})
        for attribute in (
            "normalized_performance",
            "bips",
            "dynamic_power_normalized",
            "worst_benchmark",
        ):
            with pytest.raises(ConfigurationError):
                getattr(empty, attribute)

    def test_evaluate_rejects_empty_benchmark_list(self, evaluator, typical_chip):
        arch = Cache3T1DArchitecture(typical_chip, SCHEME_RSP_FIFO)
        with pytest.raises(ConfigurationError):
            evaluator.evaluate(arch, benchmarks=[])

    def test_evaluator_rejects_empty_suite(self):
        with pytest.raises(ConfigurationError):
            Evaluator(NODE_32NM, n_references=1000, benchmarks=[])
