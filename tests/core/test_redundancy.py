"""Redundancy / ECC analysis (section 2.1)."""

import pytest

from repro.errors import ConfigurationError
from repro.core import redundancy


class TestLineFailure:
    def test_paper_anchor(self):
        # 1 - 0.996^256 = 64%.
        assert redundancy.line_failure_probability(0.004, 256) == pytest.approx(
            0.64, abs=0.01
        )

    def test_zero_rate(self):
        assert redundancy.line_failure_probability(0.0) == 0.0

    def test_monotone_in_length(self):
        assert redundancy.line_failure_probability(
            0.004, 512
        ) > redundancy.line_failure_probability(0.004, 256)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            redundancy.line_failure_probability(1.5)
        with pytest.raises(ConfigurationError):
            redundancy.line_failure_probability(0.01, 0)


class TestSpareLines:
    def test_spares_hopeless_at_paper_rate(self):
        # With 64% of lines failing, 16 spares are useless.
        assert redundancy.spare_line_yield(0.004) < 1e-6

    def test_spares_fine_at_tiny_rates(self):
        assert redundancy.spare_line_yield(1e-6) > 0.99

    def test_more_spares_help(self):
        rate = 3e-5
        assert redundancy.spare_line_yield(
            rate, spare_lines=32
        ) >= redundancy.spare_line_yield(rate, spare_lines=4)

    def test_perfect_yield_at_zero(self):
        assert redundancy.spare_line_yield(0.0) == 1.0


class TestSECDED:
    def test_word_failure_small_at_paper_rate(self):
        # Two flips in one 72-bit word at 0.4%: a few percent.
        p = redundancy.secded_word_failure_probability(0.004)
        assert 0.01 < p < 0.1

    def test_corrects_single_flips(self):
        # At very low rates ECC makes failure quadratically rare.
        p_raw = redundancy.line_failure_probability(1e-4, 512)
        p_ecc = redundancy.secded_line_failure_probability(1e-4, 512)
        assert p_ecc < p_raw / 100

    def test_ecc_still_fails_at_typical_32nm_rate(self):
        # Even SECDED + 16 spares cannot absorb the 0.4% flip rate --
        # the paper's reason for abandoning patched 6T.
        assert redundancy.secded_cache_yield(0.004) < 0.01

    def test_ecc_plus_spares_work_at_low_rates(self):
        assert redundancy.secded_cache_yield(2e-4) > 0.9


class TestMaxTolerableRate:
    def test_ecc_raises_the_ceiling(self):
        without = redundancy.max_tolerable_flip_rate(use_ecc=False)
        with_ecc = redundancy.max_tolerable_flip_rate(use_ecc=True)
        assert with_ecc > 10 * without

    def test_ceiling_below_paper_rate(self):
        # The achievable ceiling sits below the 0.4% the paper measures.
        assert redundancy.max_tolerable_flip_rate(use_ecc=True) < 0.004

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            redundancy.max_tolerable_flip_rate(target_yield=1.5)


class TestReport:
    def test_report_fields(self):
        report = redundancy.protection_report(0.004)
        assert report.line_failure == pytest.approx(0.64, abs=0.01)
        assert report.spare_yield < 1e-6
        assert 0 < report.ecc_line_failure < 1
        assert "flip rate" in str(report)
