"""Retention-scheme registry."""

import pytest

from repro.errors import ConfigurationError
from repro.core import (
    HEADLINE_SCHEMES,
    LINE_LEVEL_SCHEMES,
    SCHEME_GLOBAL,
    SCHEME_NO_REFRESH_LRU,
    SCHEME_PARTIAL_DSP,
    SCHEME_RSP_FIFO,
    SCHEME_RSP_LRU,
    get_scheme,
)


class TestRegistry:
    def test_eight_line_level_schemes(self):
        assert len(LINE_LEVEL_SCHEMES) == 8

    def test_scheme_names_unique(self):
        names = [s.name for s in LINE_LEVEL_SCHEMES] + [SCHEME_GLOBAL.name]
        assert len(names) == len(set(names))

    def test_headline_schemes_are_the_papers_three(self):
        assert [s.name for s in HEADLINE_SCHEMES] == [
            "no-refresh/LRU", "partial-refresh/DSP", "RSP-FIFO",
        ]

    def test_cross_product_minus_rsp_refresh_combos(self):
        # 3 refresh x 2 (LRU, DSP) + 2 RSP = 8.
        lru_dsp = [
            s for s in LINE_LEVEL_SCHEMES if s.replacement in ("LRU", "DSP")
        ]
        rsp = [s for s in LINE_LEVEL_SCHEMES if s.has_intrinsic_refresh]
        assert len(lru_dsp) == 6
        assert len(rsp) == 2

    def test_rsp_schemes_use_no_refresh_policy(self):
        assert SCHEME_RSP_FIFO.refresh == "no-refresh"
        assert SCHEME_RSP_LRU.refresh == "no-refresh"
        assert SCHEME_RSP_FIFO.has_intrinsic_refresh

    def test_global_flags(self):
        assert SCHEME_GLOBAL.is_global
        assert not SCHEME_GLOBAL.uses_line_counters

    def test_line_level_use_counters(self):
        for scheme in LINE_LEVEL_SCHEMES:
            assert scheme.uses_line_counters

    def test_str(self):
        assert str(SCHEME_PARTIAL_DSP) == "partial-refresh/DSP"


class TestLookup:
    def test_by_name_case_insensitive(self):
        assert get_scheme("rsp-fifo") is SCHEME_RSP_FIFO
        assert get_scheme("GLOBAL") is SCHEME_GLOBAL
        assert get_scheme("no-refresh/LRU") is SCHEME_NO_REFRESH_LRU

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            get_scheme("refresh-sometimes")
