"""6T SRAM cell model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.technology import NODE_32NM, NODE_65NM, calibration
from repro.variation import VariationParams
from repro.cells import SRAM6TCell


@pytest.fixture
def cell():
    return SRAM6TCell(NODE_32NM)


@pytest.fixture
def cell_2x():
    return SRAM6TCell(NODE_32NM, size_factor=2.0)


class TestBasics:
    def test_labels(self, cell, cell_2x):
        assert cell.label == "1X 6T"
        assert cell_2x.label == "2X 6T"

    def test_area_scales_quadratically(self, cell, cell_2x):
        assert cell_2x.area == pytest.approx(4 * cell.area)

    def test_mismatch_scale(self, cell, cell_2x):
        assert cell.mismatch_scale == pytest.approx(1.0)
        assert cell_2x.mismatch_scale == pytest.approx(0.5)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigurationError):
            SRAM6TCell(NODE_32NM, size_factor=0.0)


class TestAccessTime:
    def test_nominal_matches_anchor(self, cell):
        assert cell.access_time() == pytest.approx(
            calibration.nominal_access_time(NODE_32NM), rel=1e-9
        )

    def test_higher_vth_slows_access(self, cell):
        assert cell.access_time(delta_vth=0.05) > cell.access_time()

    def test_lower_vth_speeds_access(self, cell):
        assert cell.access_time(delta_vth=-0.05) < cell.access_time()

    def test_dead_read_path_gives_inf(self, cell):
        assert np.isinf(cell.access_time(delta_vth=2.0))

    def test_slow_periphery_slows_access(self, cell):
        assert cell.access_time(periphery_factor=1.2) > cell.access_time()

    def test_vectorised(self, cell):
        deltas = np.array([-0.03, 0.0, 0.03])
        times = cell.access_time(delta_vth=deltas)
        assert times.shape == (3,)
        assert np.all(np.diff(times) > 0)

    def test_current_factor_nominal_is_one(self, cell):
        assert cell.read_current_factor() == pytest.approx(1.0)

    def test_periphery_factor_nominal_is_one(self, cell):
        assert float(cell.periphery_delay_factor(0.0)) == pytest.approx(1.0)

    def test_periphery_factor_longer_channel_slower(self, cell):
        assert float(cell.periphery_delay_factor(2e-9)) > 1.0


class TestStability:
    def test_flip_rate_anchor(self, cell):
        # Paper: ~0.4% bit flips at 32nm under typical variation.
        sigma = VariationParams.typical().sigma_vth(NODE_32NM)
        assert cell.flip_probability(sigma) == pytest.approx(0.004, rel=0.15)

    def test_line_failure_anchor(self, cell):
        # Paper: 256-bit lines fail with ~64% probability.
        sigma = VariationParams.typical().sigma_vth(NODE_32NM)
        assert cell.line_failure_probability(sigma, 256) == pytest.approx(
            0.64, abs=0.05
        )

    def test_2x_cell_is_stable(self, cell_2x):
        sigma = VariationParams.typical().sigma_vth(NODE_32NM)
        assert cell_2x.flip_probability(sigma) < 1e-6

    def test_severe_variation_catastrophic(self, cell):
        # Paper: under severe variation almost every line has unstable cells.
        sigma = VariationParams.severe().sigma_vth(NODE_32NM)
        assert cell.line_failure_probability(sigma, 256) > 0.99

    def test_zero_sigma_never_flips(self, cell):
        assert cell.flip_probability(0.0) == 0.0

    def test_negative_sigma_rejected(self, cell):
        with pytest.raises(ConfigurationError):
            cell.flip_probability(-0.1)

    def test_line_bits_validation(self, cell):
        with pytest.raises(ConfigurationError):
            cell.line_failure_probability(0.03, 0)


class TestLeakage:
    def test_nominal_positive(self, cell):
        assert cell.nominal_cell_leakage_power() > 0

    def test_cache_total_matches_anchor(self, cell):
        total = cell.nominal_cell_leakage_power() * calibration.CACHE_TOTAL_CELLS
        assert total == pytest.approx(78.2e-3, rel=1e-6)

    def test_lower_vth_leaks_more(self, cell):
        assert cell.leakage_power(delta_vth=-0.05) > cell.leakage_power()

    def test_leakage_distribution_is_skewed(self, cell):
        rng = np.random.default_rng(0)
        draws = cell.leakage_power(delta_vth=rng.normal(0, 0.03, 50000))
        mean = np.mean(draws)
        median = np.median(draws)
        assert mean > median  # lognormal-like right skew

    def test_65nm_cell_leaks_less_total(self):
        total_65 = (
            SRAM6TCell(NODE_65NM).nominal_cell_leakage_power()
            * calibration.CACHE_TOTAL_CELLS
        )
        assert total_65 == pytest.approx(15.8e-3, rel=1e-6)
