"""Temperature scaling of retention."""

import pytest

from repro.errors import ConfigurationError
from repro.cells import thermal


class TestScaling:
    def test_reference_factor_is_one(self):
        assert thermal.leakage_temperature_factor(80.0) == pytest.approx(1.0)
        assert thermal.retention_temperature_factor(80.0) == pytest.approx(1.0)

    def test_leakage_doubles_per_interval(self):
        hot = 80.0 + thermal.DOUBLING_INTERVAL_C
        assert thermal.leakage_temperature_factor(hot) == pytest.approx(2.0)

    def test_retention_halves_per_interval(self):
        hot = 80.0 + thermal.DOUBLING_INTERVAL_C
        assert thermal.retention_temperature_factor(hot) == pytest.approx(0.5)

    def test_cooler_retains_longer(self):
        assert thermal.retention_temperature_factor(50.0) > 1.0

    def test_reciprocity(self):
        for temp in (60.0, 95.0, 110.0):
            product = thermal.leakage_temperature_factor(
                temp
            ) * thermal.retention_temperature_factor(temp)
            assert product == pytest.approx(1.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            thermal.leakage_temperature_factor(200.0)


class TestGuardBand:
    def test_default_bist_guard_band_is_consistent(self):
        # The BIST default (~0.9) corresponds to guaranteeing operation a
        # couple of degrees above the 80C test point.
        from repro.array.bist import TEMPERATURE_GUARD_BAND

        implied = thermal.guard_band_for(max_operating_c=82.3)
        assert implied == pytest.approx(TEMPERATURE_GUARD_BAND, abs=0.02)

    def test_hotter_spec_needs_bigger_derating(self):
        assert thermal.guard_band_for(100.0) < thermal.guard_band_for(90.0)

    def test_equal_temperatures_no_derating(self):
        assert thermal.guard_band_for(80.0) == pytest.approx(1.0)

    def test_rejects_inverted_temperatures(self):
        with pytest.raises(ConfigurationError):
            thermal.guard_band_for(70.0, test_c=80.0)
