"""Shared leakage-variation factor."""

import math

import numpy as np
import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.cells.leakage import (
    LEAKAGE_ROLLOFF_PER_REL_L,
    LEAKAGE_VARIATION_IDEALITY,
    leakage_variation_factor,
)


class TestNominal:
    def test_nominal_factor_is_one(self):
        assert leakage_variation_factor(0.0) == pytest.approx(1.0)

    def test_nominal_with_floor_is_one(self):
        assert leakage_variation_factor(
            0.0, sensitive_share=0.3
        ) == pytest.approx(1.0)


class TestSensitivity:
    def test_exponential_slope(self):
        slope = LEAKAGE_VARIATION_IDEALITY * units.thermal_voltage()
        assert leakage_variation_factor(-slope) == pytest.approx(
            math.e, rel=1e-9
        )

    def test_floor_limits_reduction(self):
        # With 30% sensitive share, a huge Vth increase leaves 70%.
        assert leakage_variation_factor(
            1.0, sensitive_share=0.3
        ) == pytest.approx(0.7, abs=1e-3)

    def test_floor_dampens_increase(self):
        full = leakage_variation_factor(-0.05)
        damped = leakage_variation_factor(-0.05, sensitive_share=0.3)
        assert damped < full

    def test_longer_channel_leaks_less(self):
        assert leakage_variation_factor(0.0, 0.05) < 1.0

    def test_rolloff_magnitude(self):
        slope = LEAKAGE_VARIATION_IDEALITY * units.thermal_voltage()
        rel_l = -slope / LEAKAGE_ROLLOFF_PER_REL_L
        assert leakage_variation_factor(0.0, rel_l) == pytest.approx(
            math.e, rel=1e-9
        )

    def test_custom_ideality_changes_slope(self):
        sharp = leakage_variation_factor(-0.05, ideality=1.0)
        shallow = leakage_variation_factor(-0.05, ideality=2.0)
        assert sharp > shallow

    def test_vectorised(self):
        deltas = np.array([-0.05, 0.0, 0.05])
        factors = leakage_variation_factor(deltas)
        assert factors.shape == (3,)
        assert np.all(np.diff(factors) < 0)


class TestValidation:
    def test_rejects_zero_share(self):
        with pytest.raises(ConfigurationError):
            leakage_variation_factor(0.0, sensitive_share=0.0)

    def test_rejects_share_above_one(self):
        with pytest.raises(ConfigurationError):
            leakage_variation_factor(0.0, sensitive_share=1.5)

    def test_rejects_nonpositive_ideality(self):
        with pytest.raises(ConfigurationError):
            leakage_variation_factor(0.0, ideality=0.0)
