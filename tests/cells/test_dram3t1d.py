"""3T1D DRAM cell model."""

import numpy as np
import pytest

from repro.technology import NODE_32NM, NODE_45NM, NODE_65NM, calibration
from repro.cells import DRAM3T1DCell, SRAM6TCell
from repro.cells.dram3t1d import (
    BOOST_RATIO,
    read_overdrive_required,
)


@pytest.fixture
def cell():
    return DRAM3T1DCell(NODE_32NM)


class TestStoredVoltage:
    def test_nominal_is_degraded_level(self, cell):
        # Paper Figure 3b: ~0.6 V stored for a "1".
        assert float(cell.stored_voltage()) == pytest.approx(0.6, abs=0.01)

    def test_higher_t1_vth_stores_less(self, cell):
        assert float(cell.stored_voltage(delta_vth_t1=0.05)) < float(
            cell.stored_voltage()
        )

    def test_clamps_at_zero(self, cell):
        assert float(cell.stored_voltage(delta_vth_t1=2.0)) == 0.0

    def test_boost_matches_paper(self, cell):
        # Paper: 0.6 V boosts to ~1.13 V.
        boosted = float(cell.boosted_voltage(cell.stored_voltage()))
        assert boosted == pytest.approx(1.13, abs=0.02)

    def test_boost_ratio_in_paper_range(self):
        assert 1.5 < BOOST_RATIO < 2.5


class TestRequiredVoltage:
    def test_nominal_below_stored(self, cell):
        assert float(cell.required_storage_voltage()) < float(
            cell.stored_voltage()
        )

    def test_weaker_read_stack_needs_more(self, cell):
        assert float(
            cell.required_storage_voltage(delta_vth_t2=0.05)
        ) > float(cell.required_storage_voltage())

    def test_weaker_boost_needs_more(self, cell):
        assert float(
            cell.required_storage_voltage(boost_eps=-0.1)
        ) > float(cell.required_storage_voltage())

    def test_margin_positive_at_all_nodes(self):
        for node in (NODE_65NM, NODE_45NM, NODE_32NM):
            assert DRAM3T1DCell(node).nominal_margin() > 0.1

    def test_margin_scales_with_vth(self):
        # The design rule keeps margin proportional to the node's Vth.
        m65 = DRAM3T1DCell(NODE_65NM).nominal_margin()
        m32 = DRAM3T1DCell(NODE_32NM).nominal_margin()
        assert m65 / m32 == pytest.approx(0.35 / 0.30, rel=0.02)

    def test_read_overdrive_positive(self):
        for node in (NODE_65NM, NODE_45NM, NODE_32NM):
            assert read_overdrive_required(node) > 0

    def test_scaled_vdd_uses_reference_design(self):
        # The cell is designed once per node; lowering Vdd must not
        # silently redesign it.
        low = NODE_32NM.scaled(vdd=0.9)
        assert read_overdrive_required(low) == pytest.approx(
            read_overdrive_required(NODE_32NM)
        )

    def test_lower_vdd_shrinks_margin(self):
        low = DRAM3T1DCell(NODE_32NM.scaled(vdd=0.9))
        assert low.nominal_margin() < DRAM3T1DCell(NODE_32NM).nominal_margin()


class TestDecayRate:
    def test_nominal_consistent_with_retention_anchor(self, cell):
        rate = cell.nominal_decay_rate()
        retention = cell.nominal_margin() / rate
        assert retention == pytest.approx(
            calibration.nominal_retention_time(NODE_32NM)
        )

    def test_leakier_t1_decays_faster(self, cell):
        assert float(cell.decay_rate(delta_vth_t1=-0.05)) > float(
            cell.decay_rate()
        )

    def test_decay_has_insensitive_floor(self, cell):
        # Even a very high-Vth T1 cannot stop the gate/junction floor.
        floor_ratio = float(cell.decay_rate(delta_vth_t1=1.0)) / float(
            cell.decay_rate()
        )
        assert floor_ratio == pytest.approx(0.8, abs=0.02)


class TestLeakagePower:
    def test_nominal_cache_total_matches_anchor(self, cell):
        total = cell.nominal_cell_leakage_power() * calibration.CACHE_TOTAL_CELLS
        assert total == pytest.approx(24.4e-3, rel=1e-6)

    def test_well_below_6t(self, cell):
        assert (
            cell.nominal_cell_leakage_power()
            < 0.5 * SRAM6TCell(NODE_32NM).nominal_cell_leakage_power()
        )

    def test_spread_compressed_vs_6t(self, cell):
        rng = np.random.default_rng(1)
        deltas = rng.normal(0, 0.045, 20000)
        sram = SRAM6TCell(NODE_32NM)
        spread_3t1d = np.std(
            cell.leakage_power(deltas) / cell.nominal_cell_leakage_power()
        )
        spread_6t = np.std(
            sram.leakage_power(deltas) / sram.nominal_cell_leakage_power()
        )
        assert spread_3t1d < spread_6t

    @pytest.mark.parametrize(
        "node, mw", [(NODE_65NM, 3.36), (NODE_45NM, 5.68), (NODE_32NM, 24.4)]
    )
    def test_per_node_anchor(self, node, mw):
        total = (
            DRAM3T1DCell(node).nominal_cell_leakage_power()
            * calibration.CACHE_TOTAL_CELLS
        )
        assert total == pytest.approx(mw * 1e-3, rel=1e-6)
