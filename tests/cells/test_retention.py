"""Retention-time solver and the Figure 4 curve."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.technology import NODE_32NM, NODE_45NM, NODE_65NM
from repro.cells import AccessTimeCurve, RetentionModel


@pytest.fixture
def model():
    return RetentionModel.for_node(NODE_32NM)


class TestRetentionModel:
    def test_nominal_is_figure4_anchor(self, model):
        assert float(model.retention_time()) == pytest.approx(5.8e-6, rel=1e-6)

    @pytest.mark.parametrize(
        "node, us", [(NODE_65NM, 12.0), (NODE_45NM, 8.6), (NODE_32NM, 5.8)]
    )
    def test_per_node_nominal(self, node, us):
        assert float(
            RetentionModel.for_node(node).retention_time()
        ) == pytest.approx(us * 1e-6, rel=1e-6)

    def test_leaky_t1_shortens_retention(self, model):
        assert float(model.retention_time(delta_vth_t1=-0.05)) < float(
            model.retention_time()
        )

    def test_weak_read_stack_shortens_retention(self, model):
        assert float(model.retention_time(delta_vth_t2=0.05)) < float(
            model.retention_time()
        )

    def test_weak_boost_shortens_retention(self, model):
        assert float(model.retention_time(boost_eps=-0.1)) < float(
            model.retention_time()
        )

    def test_dead_cell_retention_zero(self, model):
        assert float(model.retention_time(delta_vth_t2=1.0)) == 0.0

    def test_is_dead_flags_match_zero_retention(self, model):
        deltas = np.array([0.0, 0.3, 1.0])
        times = model.retention_time(delta_vth_t2=deltas)
        dead = model.is_dead(delta_vth_t2=deltas)
        assert np.array_equal(dead, times <= 0.0)

    def test_vectorised_shapes(self, model):
        shape = (16, 8)
        t1 = np.zeros(shape)
        assert model.retention_time(delta_vth_t1=t1).shape == shape

    def test_retention_never_negative(self, model):
        rng = np.random.default_rng(0)
        times = model.retention_time(
            delta_vth_t1=rng.normal(0, 0.1, 10000),
            delta_vth_t2=rng.normal(0, 0.1, 10000),
        )
        assert np.all(times >= 0.0)


class TestAccessTimeCurve:
    def test_starts_below_6t_speed(self, model):
        curve = AccessTimeCurve(model=model)
        assert curve.access_time(0.0) < curve.sram_access_time

    def test_initial_speedup_matches_paper_shape(self, model):
        # Figure 4: fresh 3T1D access ~0.55-0.65x of the 6T access time.
        curve = AccessTimeCurve(model=model)
        ratio = curve.access_time(0.0) / curve.sram_access_time
        assert 0.45 < ratio < 0.7

    def test_monotonically_rising(self, model):
        curve = AccessTimeCurve(model=model)
        grid = np.linspace(0, 6e-6, 30)
        access = np.asarray(curve.access_time(grid))
        assert np.all(np.diff(access) > 0)

    def test_crosses_6t_line_at_retention_time(self, model):
        curve = AccessTimeCurve(model=model)
        retention = curve.retention_time
        assert curve.access_time(retention) == pytest.approx(
            curve.sram_access_time, rel=1e-6
        )

    def test_matches_sram_speed_within_retention(self, model):
        curve = AccessTimeCurve(model=model)
        retention = curve.retention_time
        assert curve.matches_sram_speed(0.5 * retention)
        assert curve.matches_sram_speed(retention)
        assert not curve.matches_sram_speed(1.01 * retention)

    def test_weak_corner_shifts_curve_left(self, model):
        nominal = AccessTimeCurve(model=model)
        weak = AccessTimeCurve(
            model=model, delta_vth_t1=-0.05, delta_vth_t2=0.05
        )
        assert weak.retention_time < nominal.retention_time
        # Paper Figure 4: weak corner around 4 us vs 5.8 us nominal.
        assert 2e-6 < weak.retention_time < 5.5e-6

    def test_strong_corner_extends_retention(self, model):
        strong = AccessTimeCurve(
            model=model, delta_vth_t1=0.05, delta_vth_t2=-0.05
        )
        assert strong.retention_time > AccessTimeCurve(model=model).retention_time

    def test_fully_decayed_cell_unreadable(self, model):
        curve = AccessTimeCurve(model=model)
        assert np.isinf(curve.access_time(50e-6))

    def test_rejects_negative_elapsed(self, model):
        with pytest.raises(ConfigurationError):
            AccessTimeCurve(model=model).access_time(-1.0)

    def test_scalar_in_scalar_out(self, model):
        result = AccessTimeCurve(model=model).access_time(1e-6)
        assert isinstance(result, float)
