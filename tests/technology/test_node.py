"""Technology node definitions (Table 1)."""

import pytest

from repro.errors import ConfigurationError
from repro.technology import ALL_NODES, NODE_32NM, NODE_45NM, NODE_65NM
from repro.technology.node import NODE_ORDER, TechnologyNode


class TestTable1Parameters:
    @pytest.mark.parametrize(
        "node, area_um2, wire_w_um, wire_t_um, tox_nm, freq_ghz",
        [
            (NODE_65NM, 0.90, 0.10, 0.20, 1.2, 3.0),
            (NODE_45NM, 0.45, 0.07, 0.14, 1.1, 3.5),
            (NODE_32NM, 0.23, 0.05, 0.10, 1.0, 4.3),
        ],
    )
    def test_matches_paper_table1(
        self, node, area_um2, wire_w_um, wire_t_um, tox_nm, freq_ghz
    ):
        assert node.cell_area == pytest.approx(area_um2 * 1e-12)
        assert node.wire_width == pytest.approx(wire_w_um * 1e-6)
        assert node.wire_thickness == pytest.approx(wire_t_um * 1e-6)
        assert node.oxide_thickness == pytest.approx(tox_nm * 1e-9)
        assert node.frequency == pytest.approx(freq_ghz * 1e9)

    def test_all_nodes_registry(self):
        assert set(ALL_NODES) == {"65nm", "45nm", "32nm"}

    def test_node_order_is_scaling_order(self):
        assert NODE_ORDER == ("65nm", "45nm", "32nm")

    def test_feature_sizes_scale_down(self):
        assert NODE_65NM.feature_size > NODE_45NM.feature_size > NODE_32NM.feature_size

    def test_frequencies_scale_up(self):
        assert NODE_65NM.frequency < NODE_45NM.frequency < NODE_32NM.frequency


class TestDerivedQuantities:
    def test_cycle_time(self):
        assert NODE_32NM.cycle_time == pytest.approx(1 / 4.3e9)

    def test_oxide_capacitance_positive_and_ordered(self):
        # Thinner oxide -> larger capacitance per area.
        assert (
            NODE_32NM.oxide_capacitance_per_area
            > NODE_65NM.oxide_capacitance_per_area
            > 0
        )

    def test_gate_overdrive(self):
        assert NODE_32NM.gate_overdrive == pytest.approx(1.1 - 0.30)


class TestLookupAndScaling:
    def test_from_name(self):
        assert TechnologyNode.from_name("32nm") is NODE_32NM

    def test_from_name_unknown(self):
        with pytest.raises(ConfigurationError):
            TechnologyNode.from_name("22nm")

    def test_scaled_overrides_vdd(self):
        low = NODE_32NM.scaled(vdd=0.9)
        assert low.vdd == pytest.approx(0.9)
        assert low.frequency == NODE_32NM.frequency
        assert low.name == NODE_32NM.name

    def test_scaled_rejects_unknown_field(self):
        with pytest.raises(ConfigurationError):
            NODE_32NM.scaled(bogus=1.0)

    def test_scaled_does_not_mutate_original(self):
        NODE_32NM.scaled(vdd=0.9)
        assert NODE_32NM.vdd == pytest.approx(1.1)


class TestValidation:
    def test_rejects_negative_feature_size(self):
        with pytest.raises(ConfigurationError):
            NODE_32NM.scaled(feature_size=-1e-9)

    def test_rejects_zero_frequency(self):
        with pytest.raises(ConfigurationError):
            NODE_32NM.scaled(frequency=0.0)

    def test_rejects_vth_above_vdd(self):
        with pytest.raises(ConfigurationError):
            NODE_32NM.scaled(vth=1.2)

    def test_rejects_negative_vth(self):
        with pytest.raises(ConfigurationError):
            NODE_32NM.scaled(vth=-0.1)
