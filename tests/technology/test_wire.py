"""Distributed-pi wire model."""

import pytest

from repro.errors import ConfigurationError
from repro.technology import NODE_32NM, NODE_65NM
from repro.technology.wire import WireModel


@pytest.fixture
def wire():
    return WireModel(NODE_32NM)


class TestPerLengthValues:
    def test_resistance_positive(self, wire):
        assert wire.resistance_per_meter > 0

    def test_narrower_wire_more_resistive(self):
        assert (
            WireModel(NODE_32NM).resistance_per_meter
            > WireModel(NODE_65NM).resistance_per_meter
        )

    def test_capacitance_positive(self, wire):
        assert wire.capacitance_per_meter > 0

    def test_capacitance_order_of_magnitude(self, wire):
        # Scaled cache wires are ~0.1-0.3 fF/um.
        per_um = wire.capacitance_per_meter * 1e-6
        assert 0.02e-15 < per_um < 1e-15


class TestElmoreDelay:
    def test_zero_length_zero_delay(self, wire):
        assert wire.elmore_delay(0.0) == 0.0

    def test_quadratic_in_length(self, wire):
        d1 = wire.elmore_delay(100e-6)
        d2 = wire.elmore_delay(200e-6)
        assert d2 / d1 == pytest.approx(4.0, rel=1e-9)

    def test_load_adds_delay(self, wire):
        bare = wire.elmore_delay(100e-6)
        loaded = wire.elmore_delay(100e-6, load_capacitance=10e-15)
        assert loaded > bare

    def test_driver_resistance_adds_delay(self, wire):
        bare = wire.elmore_delay(100e-6)
        driven = wire.elmore_delay(100e-6, driver_resistance=1e3)
        assert driven > bare

    def test_bitline_scale_delay_fits_access_budget(self, wire):
        # A 256-row bitline (~123 um at 32nm) must be well inside the
        # 208 ps array access time.
        import math

        length = 256 * math.sqrt(NODE_32NM.cell_area)
        assert wire.elmore_delay(length) < 208e-12

    def test_rejects_negative_length(self, wire):
        with pytest.raises(ConfigurationError):
            wire.elmore_delay(-1.0)


class TestWireCapacitance:
    def test_linear_in_length(self, wire):
        assert wire.wire_capacitance(2e-6) == pytest.approx(
            2 * wire.wire_capacitance(1e-6)
        )

    def test_rejects_negative_length(self, wire):
        with pytest.raises(ConfigurationError):
            wire.wire_capacitance(-1e-6)
