"""Calibration anchors (Table 3 / Figure 4 pins)."""

import pytest

from repro.errors import CalibrationError
from repro.technology import NODE_32NM, NODE_45NM, NODE_65NM, calibration
from repro.technology.transistor import Transistor


class TestAccessTimeAnchors:
    @pytest.mark.parametrize(
        "node, ps", [(NODE_65NM, 285), (NODE_45NM, 251), (NODE_32NM, 208)]
    )
    def test_table3_values(self, node, ps):
        assert calibration.nominal_access_time(node) == pytest.approx(
            ps * 1e-12
        )

    def test_unknown_node_raises(self):
        with pytest.raises(CalibrationError):
            calibration.nominal_access_time(NODE_32NM.scaled(name="22nm"))


class TestLeakageCalibration:
    @pytest.mark.parametrize(
        "node, mw", [(NODE_65NM, 15.8), (NODE_45NM, 36.0), (NODE_32NM, 78.2)]
    )
    def test_cache_leakage_reconstructs_anchor(self, node, mw):
        # Summing the calibrated per-device off-current over the cache
        # must return the Table 3 leakage anchor.
        device = Transistor(node=node)
        total = (
            device.off_current()
            * node.vdd
            * calibration.CACHE_TOTAL_CELLS
            * calibration.STRONG_LEAK_PATHS_6T
        )
        assert total == pytest.approx(mw * 1e-3, rel=1e-6)

    def test_leakage_constant_positive(self):
        assert calibration.leakage_constant_for_node(NODE_32NM) > 0


class TestGeometryConstants:
    def test_cache_data_bits(self):
        assert calibration.CACHE_DATA_BITS == 64 * 1024 * 8

    def test_cache_lines(self):
        assert calibration.CACHE_LINES == 1024

    def test_total_cells_includes_tags(self):
        expected = 64 * 1024 * 8 + 1024 * calibration.TAG_BITS_PER_LINE
        assert calibration.CACHE_TOTAL_CELLS == expected

    def test_access_fractions_sum_to_one(self):
        total = (
            calibration.BITLINE_FRACTION
            + calibration.WORDLINE_FRACTION
            + calibration.PERIPHERY_FRACTION
        )
        assert total == pytest.approx(1.0)


class TestRetentionAnchors:
    def test_32nm_figure4_anchor(self):
        assert calibration.nominal_retention_time(NODE_32NM) == pytest.approx(
            5.8e-6
        )

    def test_retention_decreases_with_scaling(self):
        assert (
            calibration.nominal_retention_time(NODE_65NM)
            > calibration.nominal_retention_time(NODE_45NM)
            > calibration.nominal_retention_time(NODE_32NM)
        )

    def test_lower_vdd_shortens_retention(self):
        low = NODE_32NM.scaled(vdd=0.9)
        assert calibration.nominal_retention_time(
            low
        ) < calibration.nominal_retention_time(NODE_32NM)

    def test_tiny_headroom_crushes_retention(self):
        hopeless = NODE_32NM.scaled(vdd=0.301, vth=0.30)
        # 1 mV of headroom quadratically crushes retention (vs 5.8 us).
        assert calibration.nominal_retention_time(hopeless) < 1e-9


class TestDynamicEnergyAnchors:
    @pytest.mark.parametrize(
        "node, full_mw",
        [(NODE_65NM, 31.97), (NODE_45NM, 25.96), (NODE_32NM, 20.75)],
    )
    def test_port_energy_reconstructs_full_power(self, node, full_mw):
        energy = calibration.port_access_energy(node, "6T")
        full = energy * calibration.TOTAL_PORTS * node.frequency
        assert full == pytest.approx(full_mw * 1e-3, rel=1e-6)

    def test_3t1d_energy_slightly_below_6t(self):
        assert calibration.port_access_energy(
            NODE_32NM, "3T1D"
        ) < calibration.port_access_energy(NODE_32NM, "6T")

    def test_energy_scales_with_vdd_squared(self):
        low = NODE_32NM.scaled(vdd=0.55)
        ratio = calibration.port_access_energy(
            low, "6T"
        ) / calibration.port_access_energy(NODE_32NM, "6T")
        assert ratio == pytest.approx(0.25, rel=1e-6)

    def test_refresh_line_energy_below_port_access(self):
        assert calibration.refresh_line_energy(
            NODE_32NM
        ) < calibration.port_access_energy(NODE_32NM, "3T1D")
