"""First-order MOSFET model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.technology import NODE_32NM, NODE_65NM
from repro.technology.transistor import (
    ALPHA_POWER_EXPONENT,
    PMOS_DRIVE_DERATING,
    SUBTHRESHOLD_IDEALITY,
    Transistor,
    TransistorType,
)


@pytest.fixture
def nmos():
    return Transistor(node=NODE_32NM)


class TestGeometry:
    def test_minimum_device_dimensions(self, nmos):
        assert nmos.width == pytest.approx(32e-9)
        assert nmos.length == pytest.approx(32e-9)

    def test_gate_area(self, nmos):
        assert nmos.gate_area == pytest.approx(32e-9 * 32e-9)

    def test_capacitances_positive(self, nmos):
        assert nmos.gate_capacitance > 0
        assert nmos.drain_capacitance == pytest.approx(
            0.5 * nmos.gate_capacitance
        )

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ConfigurationError):
            Transistor(node=NODE_32NM, width_f=0.0)
        with pytest.raises(ConfigurationError):
            Transistor(node=NODE_32NM, length_f=-1.0)


class TestMismatchScaling:
    def test_minimum_device_scale_is_one(self, nmos):
        assert nmos.mismatch_sigma_scale() == pytest.approx(1.0)

    def test_2x_cell_halves_sigma(self):
        big = Transistor(node=NODE_32NM, width_f=2.0, length_f=2.0)
        assert big.mismatch_sigma_scale() == pytest.approx(0.5)

    def test_wider_device_reduces_sigma(self):
        wide = Transistor(node=NODE_32NM, width_f=4.0)
        assert wide.mismatch_sigma_scale() == pytest.approx(0.5)


class TestEffectiveVth:
    def test_nominal(self, nmos):
        assert nmos.effective_vth() == pytest.approx(NODE_32NM.vth)

    def test_dopant_shift_adds(self, nmos):
        assert nmos.effective_vth(delta_vth=0.03) == pytest.approx(
            NODE_32NM.vth + 0.03
        )

    def test_longer_channel_raises_vth(self, nmos):
        assert nmos.effective_vth(delta_l=1e-9) > NODE_32NM.vth

    def test_rolloff_scales_with_relative_length(self):
        # Same relative delta_l gives the same Vth shift at both nodes.
        small = Transistor(node=NODE_32NM)
        large = Transistor(node=NODE_65NM)
        shift_small = small.effective_vth(delta_l=0.05 * small.length) - NODE_32NM.vth
        shift_large = large.effective_vth(delta_l=0.05 * large.length) - NODE_65NM.vth
        assert shift_small == pytest.approx(shift_large, rel=1e-9)

    def test_vectorised(self, nmos):
        deltas = np.array([-0.03, 0.0, 0.03])
        result = nmos.effective_vth(delta_vth=deltas)
        assert result.shape == (3,)
        assert np.all(np.diff(result) > 0)


class TestOnCurrent:
    def test_positive_at_nominal(self, nmos):
        assert nmos.on_current() > 0

    def test_alpha_power_law(self, nmos):
        # I ~ (Vdd - Vth)^alpha: check the exponent numerically.
        i1 = nmos.on_current(vgs=NODE_32NM.vth + 0.4)
        i2 = nmos.on_current(vgs=NODE_32NM.vth + 0.8)
        assert i2 / i1 == pytest.approx(2 ** ALPHA_POWER_EXPONENT, rel=1e-6)

    def test_higher_vth_lowers_current(self, nmos):
        assert nmos.on_current(delta_vth=0.05) < nmos.on_current()

    def test_dead_device_clamps_to_zero(self, nmos):
        assert nmos.on_current(delta_vth=2.0) == 0.0

    def test_pmos_derated(self):
        nmos = Transistor(node=NODE_32NM, kind=TransistorType.NMOS)
        pmos = Transistor(node=NODE_32NM, kind=TransistorType.PMOS)
        assert pmos.on_current() == pytest.approx(
            PMOS_DRIVE_DERATING * nmos.on_current()
        )

    def test_wider_device_drives_more(self):
        wide = Transistor(node=NODE_32NM, width_f=2.0)
        narrow = Transistor(node=NODE_32NM, width_f=1.0)
        assert wide.on_current() == pytest.approx(2 * narrow.on_current())


class TestOffCurrent:
    def test_positive(self, nmos):
        assert nmos.off_current() > 0

    def test_exponential_in_vth(self, nmos):
        import math

        from repro import units

        slope = SUBTHRESHOLD_IDEALITY * units.thermal_voltage()
        ratio = nmos.off_current(delta_vth=-slope) / nmos.off_current()
        assert ratio == pytest.approx(math.e, rel=1e-6)

    def test_hotter_leaks_more(self, nmos):
        # Thermal voltage rises with T, flattening the exponential and
        # raising leakage for a fixed Vth.
        assert nmos.off_current(temperature_c=110.0) > nmos.off_current(
            temperature_c=80.0
        )

    def test_subthreshold_swing_near_105mv_per_decade(self, nmos):
        assert nmos.subthreshold_swing() == pytest.approx(0.105, abs=0.01)
