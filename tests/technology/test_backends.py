"""The technology-backend protocol: conformance, determinism, identity.

Three layers of guarantees:

* every registered backend satisfies the full protocol and produces
  structurally valid, deterministic, picklable retention maps;
* the default 3T1D backend is *bit-identical* to the pre-backend
  ``ChipSampler`` sampling loop (golden digests) and to pre-backend
  evaluation outputs through the batched kernels (golden floats);
* the STT-RAM and variation-aware-DRAM models have the shapes their
  source papers describe (relaxed banks, latency gradients) and still
  run entirely on the batched/timeline kernels.
"""

import hashlib
import pickle

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.technology import NODE_32NM
from repro.technology.backends import (
    BACKEND_PROTOCOL_METHODS,
    DEFAULT_TECHNOLOGY,
    DRAM3T1DBackend,
    RetentionMap,
    STTRAMBackend,
    TechnologyBackend,
    VarDRAMBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.variation import VariationParams
from repro.array import ChipSampler
from repro.core import (
    Cache3T1DArchitecture,
    Evaluator,
    evaluate_many,
    kernel_support,
)
from repro.engine.parallel import EvaluatorSpec

ALL_BACKENDS = ("3t1d", "sttram", "vardram")

#: Golden digests/values of two severe chips sampled pre-backend
#: (ChipSampler(NODE_32NM, severe, seed=7)); the default backend must
#: reproduce them bit-for-bit.
GOLDEN_CHIPS = (
    {
        "retention_sha": "c91a3bfa2813e67da8df4b15f838af1bf3c9d4e33f"
        "1b09a1503ce752a47d0bcb",
        "word_sha": "d5ec0be8a288f2f6be82bfda4c50800cefabc751d6e00b"
        "ce957112484042a46d",
        "leakage": 0.04851042048635436,
    },
    {
        "retention_sha": "2a33857d446610d91a28d890158a9334b32cf55eb5"
        "e7e5edfbd2f40a0fc309d5",
        "word_sha": "11c33594657eb0ba623f3871107427714c764b7b49af8f"
        "1b94952c973e2927d7",
        "leakage": 0.020423840085980402,
    },
)

#: Pre-backend evaluation outputs (normalized_performance,
#: dynamic_power_normalized) for the same two chips through
#: Evaluator(NODE_32NM, n_references=1500, seed=3), per scheme.
GOLDEN_EVALS = {
    (0, "no-refresh/LRU"): (0.9928319119155711, 1.0388053808456845),
    (0, "partial-refresh/DSP"): (0.9982941761504412, 1.102268235187481),
    (0, "rsp-fifo"): (0.9964427707894231, 1.1812800991349026),
    (1, "no-refresh/LRU"): (0.9970305633670952, 1.0292047545163836),
    (1, "partial-refresh/DSP"): (0.9986265170882993, 1.086695548526384),
    (1, "rsp-fifo"): (0.9964419920373198, 1.182641473374127),
}


def sample_chips(technology, n=2, severity="severe", seed=7):
    sampler = ChipSampler(
        NODE_32NM,
        getattr(VariationParams, severity)(),
        seed=seed,
        technology=technology,
    )
    return [sampler.sample_3t1d_chip() for _ in range(n)]


class TestProtocolConformance:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_registry_resolves_and_name_matches(self, name):
        backend = get_backend(name)
        assert isinstance(backend, TechnologyBackend)
        assert backend.name == name
        assert name in backend_names()

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_all_protocol_methods_callable(self, name):
        backend = get_backend(name)
        for method in BACKEND_PROTOCOL_METHODS:
            assert callable(getattr(backend, method))

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_scalar_surface_is_physical(self, name):
        from repro.array.geometry import CacheGeometry

        backend = get_backend(name)
        timing = backend.cell_timing(NODE_32NM)
        energy = backend.cell_energy(NODE_32NM)
        assert timing.read_time > 0 and timing.write_time > 0
        assert energy.read_energy > 0 and energy.write_energy > 0
        assert backend.leakage_power(NODE_32NM, CacheGeometry()) >= 0
        assert backend.nominal_retention_time(NODE_32NM) > 0

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_latency_and_refresh_models(self, name):
        backend = get_backend(name)
        chips = sample_chips(name, n=1)
        geometry = chips[0].geometry
        latency = backend.latency_model(NODE_32NM, geometry)
        assert latency.read_hit_cycles >= 1
        assert latency.write_extra_cycles >= 0
        cost = backend.refresh_cost(NODE_32NM, geometry)
        assert cost.cycles_per_line >= 0
        assert cost.energy_per_line >= 0

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_retention_map_shape(self, name):
        chip = sample_chips(name, n=1)[0]
        geometry = chip.geometry
        assert chip.retention_by_line.shape == (geometry.n_lines,)
        assert chip.retention_by_word.shape == (geometry.n_lines, 8)
        assert np.all(chip.retention_by_line >= 0)
        assert chip.leakage_power > 0
        assert chip.golden_leakage_power > 0
        # Line retention is the min over the line's words.
        np.testing.assert_allclose(
            chip.retention_by_line,
            chip.retention_by_word.min(axis=1),
        )
        assert chip.technology == name

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_retention_map_deterministic_under_seed(self, name):
        first = sample_chips(name, n=2)
        second = sample_chips(name, n=2)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(
                a.retention_by_line, b.retention_by_line
            )
            np.testing.assert_array_equal(
                a.retention_by_word, b.retention_by_word
            )
            assert a.leakage_power == b.leakage_power

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_backend_and_samples_pickle(self, name):
        backend = get_backend(name)
        clone = pickle.loads(pickle.dumps(backend))
        assert clone.name == backend.name
        chip = sample_chips(name, n=1)[0]
        chip_clone = pickle.loads(pickle.dumps(chip))
        np.testing.assert_array_equal(
            chip_clone.retention_by_line, chip.retention_by_line
        )
        assert chip_clone.technology == name


class TestRegistry:
    def test_unknown_backend_raises_with_known_names(self):
        with pytest.raises(ConfigurationError, match="sttram"):
            get_backend("femtojoule-magic")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="registered"):
            register_backend(DRAM3T1DBackend())

    def test_replace_allows_reregistration(self):
        register_backend(DRAM3T1DBackend(), replace=True)
        assert get_backend("3t1d").name == "3t1d"

    def test_non_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            register_backend(object())

    def test_default_technology_is_registered(self):
        assert DEFAULT_TECHNOLOGY in backend_names()


class TestDefaultBackendBitIdentity:
    """The 3T1D backend is a verbatim port of the original sampler."""

    @pytest.fixture(scope="class")
    def chips(self):
        return sample_chips("3t1d", n=2)

    def test_retention_maps_match_pre_backend_digests(self, chips):
        for chip, golden in zip(chips, GOLDEN_CHIPS):
            assert (
                hashlib.sha256(chip.retention_by_line.tobytes()).hexdigest()
                == golden["retention_sha"]
            )
            assert (
                hashlib.sha256(chip.retention_by_word.tobytes()).hexdigest()
                == golden["word_sha"]
            )
            assert chip.leakage_power == golden["leakage"]

    def test_kernel_outputs_match_pre_backend_goldens(self, chips):
        suite = Evaluator(NODE_32NM, n_references=1500, seed=3)
        schemes = ("no-refresh/LRU", "partial-refresh/DSP", "rsp-fifo")
        rows = evaluate_many(chips, schemes, suite)
        for chip_index, per_scheme in enumerate(rows):
            for scheme, evaluation in zip(schemes, per_scheme):
                golden = GOLDEN_EVALS[(chip_index, scheme)]
                assert evaluation.normalized_performance == golden[0]
                assert evaluation.dynamic_power_normalized == golden[1]

    def test_default_sampler_is_backend_routed(self, chips):
        backend = get_backend("3t1d")
        from repro.variation.montecarlo import VariationSampler

        chip = VariationSampler(
            NODE_32NM, VariationParams.severe(), seed=99
        ).sample_chip()
        rmap = backend.sample_retention_map(chip, chips[0].geometry)
        assert isinstance(rmap, RetentionMap)
        assert rmap.latency_factor_by_line is None  # no latency variation


class TestSTTRAMModel:
    @pytest.fixture(scope="class")
    def chip(self):
        return sample_chips("sttram", n=1)[0]

    def test_relaxed_banks_shorten_retention(self, chip):
        # Line index is row * n_pairs + pair, so a (rows, pairs) view
        # puts each sub-array pair in one column; odd pairs are relaxed.
        geometry = chip.geometry
        per_pair = chip.retention_by_line.reshape(
            geometry.rows_per_pair, geometry.n_pairs
        )
        strict = per_pair[:, 0::2].mean()
        relaxed = per_pair[:, 1::2].mean()
        assert relaxed < strict

    def test_dvfs_point_erodes_retention(self):
        from repro.technology.backends import DVFSPoint

        nominal = STTRAMBackend()
        hot = STTRAMBackend(dvfs=DVFSPoint("turbo", vdd_scale=1.1,
                                           frequency_scale=1.2))
        assert (
            hot.nominal_retention_time(NODE_32NM)
            < nominal.nominal_retention_time(NODE_32NM)
        )

    def test_write_asymmetry(self):
        backend = get_backend("sttram")
        timing = backend.cell_timing(NODE_32NM)
        energy = backend.cell_energy(NODE_32NM)
        assert timing.write_time > timing.read_time
        assert energy.write_energy > energy.read_energy
        chip = sample_chips("sttram", n=1)[0]
        latency = backend.latency_model(NODE_32NM, chip.geometry)
        assert latency.write_extra_cycles >= 1

    def test_scrub_refresh_is_read_plus_write(self):
        backend = get_backend("sttram")
        chip = sample_chips("sttram", n=1)[0]
        cost = backend.refresh_cost(NODE_32NM, chip.geometry)
        assert cost.needs_refresh
        assert cost.energy_per_line > 0

    def test_no_latency_variation_map(self, chip):
        assert chip.latency_factor_by_line is None
        assert chip.mean_latency_factor == 1.0


class TestVarDRAMModel:
    @pytest.fixture(scope="class")
    def chip(self):
        return sample_chips("vardram", n=1)[0]

    def test_latency_factors_present_and_skewed_slow(self, chip):
        # The deterministic mat-position gradient only adds latency;
        # process jitter (median 1) can pull single lines slightly
        # below nominal, but the population mean must sit above it.
        factors = chip.latency_factor_by_line
        assert factors is not None
        assert factors.shape == chip.retention_by_line.shape
        assert np.all(factors > 0)
        assert chip.mean_latency_factor > 1.0

    def test_slower_lines_retain_less(self, chip):
        # The restore-truncation coupling: the slowest third of lines
        # must retain less on average than the fastest third.
        order = np.argsort(chip.latency_factor_by_line)
        third = len(order) // 3
        fast = chip.retention_by_line[order[:third]].mean()
        slow = chip.retention_by_line[order[-third:]].mean()
        assert slow < fast


class TestKernelPathCoverage:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_backends_stay_on_batched_kernels(self, name):
        spec = EvaluatorSpec(
            node=NODE_32NM, ways=4, n_references=800, seed=5,
            technology=name,
        )
        from repro.core import get_scheme

        evaluator = spec.build()
        chip = sample_chips(name, n=1, severity="typical")[0]
        for scheme in ("no-refresh/LRU", "rsp-fifo"):
            architecture = Cache3T1DArchitecture(
                chip, get_scheme(scheme), config=evaluator.config
            )
            support = kernel_support(architecture.build_cache())
            assert support.supported
            assert support.path in ("flattened", "timeline")
