"""The shipped examples stay runnable.

The two fastest examples run end-to-end as subprocesses; the heavier
studies are compile-checked and their entry points imported, so a broken
API surface fails the suite without minutes of simulation.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_expected_scripts():
    names = {path.name for path in ALL_EXAMPLES}
    assert {
        "quickstart.py",
        "chip_yield_analysis.py",
        "scheme_design_space.py",
        "voltage_technology_scaling.py",
        "pipeline_simulation.py",
        "fab_test_flow.py",
    } <= names


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def _run(script, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        check=False,
    )


def test_quickstart_runs():
    result = _run("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "3T1D chip" in result.stdout
    assert "RSP-FIFO" in result.stdout


def test_pipeline_simulation_runs_small():
    result = _run("pipeline_simulation.py", "gzip", "6000")
    assert result.returncode == 0, result.stderr
    assert "ideal 6T cache" in result.stdout
    assert "IPC" in result.stdout


def test_chip_yield_analysis_runs_small():
    result = _run("chip_yield_analysis.py", "6")
    assert result.returncode == 0, result.stderr
    assert "severe variation" in result.stdout
    assert "100.0% ship" in result.stdout
