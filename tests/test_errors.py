"""Exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigurationError,
            errors.CalibrationError,
            errors.SimulationError,
            errors.TraceError,
            errors.ChipDiscardedError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_repro_error_is_exception(self):
        assert issubclass(errors.ReproError, Exception)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.ChipDiscardedError("chip 12 cannot refresh")

    def test_library_raises_catchable_errors(self):
        from repro import TechnologyNode

        with pytest.raises(errors.ReproError):
            TechnologyNode.from_name("7nm")
