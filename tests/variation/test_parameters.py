"""Variation scenario parameters."""

import pytest

from repro.errors import ConfigurationError
from repro.technology import NODE_32NM, NODE_65NM
from repro.variation import VariationParams


class TestScenarios:
    def test_typical_matches_paper(self):
        params = VariationParams.typical()
        assert params.sigma_l_wid_rel == pytest.approx(0.05)
        assert params.sigma_vth_rel == pytest.approx(0.10)
        assert params.sigma_l_d2d_rel == pytest.approx(0.05)

    def test_severe_matches_paper(self):
        params = VariationParams.severe()
        assert params.sigma_l_wid_rel == pytest.approx(0.07)
        assert params.sigma_vth_rel == pytest.approx(0.15)
        assert params.sigma_l_d2d_rel == pytest.approx(0.05)

    def test_none_is_zero(self):
        params = VariationParams.none()
        assert params.is_zero

    def test_typical_is_not_zero(self):
        assert not VariationParams.typical().is_zero

    def test_names(self):
        assert VariationParams.typical().name == "typical"
        assert VariationParams.severe().name == "severe"


class TestAbsoluteSigmas:
    def test_sigma_l_wid_scales_with_feature(self):
        params = VariationParams.typical()
        assert params.sigma_l_wid(NODE_32NM) == pytest.approx(0.05 * 32e-9)
        assert params.sigma_l_wid(NODE_65NM) == pytest.approx(0.05 * 65e-9)

    def test_sigma_d2d(self):
        params = VariationParams.severe()
        assert params.sigma_l_d2d(NODE_32NM) == pytest.approx(0.05 * 32e-9)

    def test_sigma_vth_scales_with_vth(self):
        params = VariationParams.typical()
        assert params.sigma_vth(NODE_32NM) == pytest.approx(0.10 * 0.30)

    def test_sigma_vth_pelgrom_scaling(self):
        params = VariationParams.typical()
        assert params.sigma_vth(NODE_32NM, area_scale=0.5) == pytest.approx(
            0.5 * params.sigma_vth(NODE_32NM)
        )

    def test_sigma_vth_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            VariationParams.typical().sigma_vth(NODE_32NM, area_scale=0.0)


class TestValidation:
    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            VariationParams(sigma_l_wid_rel=-0.01, sigma_vth_rel=0.1)

    def test_rejects_sigma_of_one(self):
        with pytest.raises(ConfigurationError):
            VariationParams(sigma_l_wid_rel=0.05, sigma_vth_rel=1.0)

    def test_custom_in_range_accepted(self):
        params = VariationParams(sigma_l_wid_rel=0.06, sigma_vth_rel=0.12)
        assert params.name == "custom"
