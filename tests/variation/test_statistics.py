"""Distribution summaries and statistics helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.variation import harmonic_mean, normalized_histogram, summarize
from repro.variation.statistics import median_chip_index


class TestHarmonicMean:
    def test_single_value(self):
        assert harmonic_mean([2.0]) == pytest.approx(2.0)

    def test_known_value(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4 / 3)

    def test_below_arithmetic_mean(self):
        values = [0.5, 1.5, 2.5]
        assert harmonic_mean(values) < np.mean(values)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            harmonic_mean([])

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            harmonic_mean([1.0, 0.0])

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            harmonic_mean([1.0, -2.0])


class TestNormalizedHistogram:
    def test_sums_to_one(self):
        hist = normalized_histogram([0.1, 0.5, 0.9], [0.0, 0.5, 1.0])
        assert hist.sum() == pytest.approx(1.0)

    def test_counts_in_correct_bins(self):
        hist = normalized_histogram([0.1, 0.2, 0.9], [0.0, 0.5, 1.0])
        assert hist[0] == pytest.approx(2 / 3)
        assert hist[1] == pytest.approx(1 / 3)

    def test_clamps_outliers_into_edge_bins(self):
        hist = normalized_histogram([-5.0, 5.0], [0.0, 0.5, 1.0])
        assert hist[0] == pytest.approx(0.5)
        assert hist[1] == pytest.approx(0.5)

    def test_empty_values_gives_zeros(self):
        hist = normalized_histogram([], [0.0, 1.0, 2.0])
        assert np.all(hist == 0.0)

    def test_rejects_single_edge(self):
        with pytest.raises(ConfigurationError):
            normalized_histogram([1.0], [0.0])

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ConfigurationError):
            normalized_histogram([1.0], [1.0, 0.0, 2.0])


class TestSummarize:
    def test_fields(self):
        summary = summarize(np.arange(101, dtype=float))
        assert summary.count == 101
        assert summary.mean == pytest.approx(50.0)
        assert summary.minimum == 0.0
        assert summary.maximum == 100.0
        assert summary.median == pytest.approx(50.0)
        assert summary.p05 == pytest.approx(5.0)
        assert summary.p95 == pytest.approx(95.0)

    def test_str_renders(self):
        assert "median" in str(summarize([1.0, 2.0, 3.0]))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            summarize([])


class TestMedianChipIndex:
    def test_odd_length(self):
        assert median_chip_index([10.0, 30.0, 20.0]) == 2

    def test_single(self):
        assert median_chip_index([7.0]) == 0

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            median_chip_index([])
