"""Per-chip Monte-Carlo sampling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.technology import NODE_32NM
from repro.variation import VariationParams, VariationSampler


@pytest.fixture
def sampler():
    return VariationSampler(NODE_32NM, VariationParams.typical(), seed=1)


class TestSampler:
    def test_default_subarray_grid(self, sampler):
        assert sampler.n_subarrays == 8

    def test_chip_ids_sequential(self, sampler):
        chips = [sampler.sample_chip() for _ in range(3)]
        assert [c.chip_id for c in chips] == [0, 1, 2]

    def test_deterministic_sequence(self):
        a = VariationSampler(NODE_32NM, VariationParams.typical(), seed=9)
        b = VariationSampler(NODE_32NM, VariationParams.typical(), seed=9)
        chip_a = a.sample_chip()
        chip_b = b.sample_chip()
        assert chip_a.delta_l_d2d == chip_b.delta_l_d2d
        assert np.array_equal(chip_a.delta_l_subarray, chip_b.delta_l_subarray)

    def test_chip_sequence_independent_of_rng_usage(self):
        # Using chip 0's private rng must not change chip 1's draw.
        a = VariationSampler(NODE_32NM, VariationParams.typical(), seed=5)
        first = a.sample_chip()
        first.rng.normal(size=1000)  # burn some draws
        second_after_use = a.sample_chip()

        b = VariationSampler(NODE_32NM, VariationParams.typical(), seed=5)
        b.sample_chip()
        second_clean = b.sample_chip()
        assert second_after_use.delta_l_d2d == second_clean.delta_l_d2d

    def test_sample_chips_count(self, sampler):
        assert len(list(sampler.sample_chips(5))) == 5

    def test_sample_chips_rejects_negative(self, sampler):
        with pytest.raises(ConfigurationError):
            list(sampler.sample_chips(-1))

    def test_d2d_spread_matches_sigma(self):
        sampler = VariationSampler(NODE_32NM, VariationParams.typical(), seed=3)
        d2d = [sampler.sample_chip().delta_l_d2d for _ in range(800)]
        assert np.std(d2d) == pytest.approx(0.05 * 32e-9, rel=0.1)

    def test_subarray_spread_matches_sigma(self):
        sampler = VariationSampler(NODE_32NM, VariationParams.severe(), seed=3)
        values = np.concatenate(
            [sampler.sample_chip().delta_l_subarray for _ in range(400)]
        )
        assert np.std(values) == pytest.approx(0.07 * 32e-9, rel=0.1)


class TestChipVariation:
    def test_delta_l_total_combines_components(self, sampler):
        chip = sampler.sample_chip()
        total = chip.delta_l_total(3)
        assert total == pytest.approx(
            chip.delta_l_d2d + chip.delta_l_subarray[3]
        )

    def test_delta_l_total_index_validation(self, sampler):
        chip = sampler.sample_chip()
        with pytest.raises(ConfigurationError):
            chip.delta_l_total(99)

    def test_sample_vth_shape_and_sigma(self, sampler):
        chip = sampler.sample_chip()
        draws = chip.sample_vth(20000)
        assert draws.shape == (20000,)
        assert np.std(draws) == pytest.approx(0.03, rel=0.05)

    def test_sample_vth_pelgrom_scale(self, sampler):
        chip = sampler.sample_chip()
        draws = chip.sample_vth(20000, sigma_scale=0.5)
        assert np.std(draws) == pytest.approx(0.015, rel=0.05)

    def test_zero_variation_chip_is_all_zeros(self):
        golden = VariationSampler.golden(NODE_32NM)
        assert golden.delta_l_d2d == 0.0
        assert np.all(golden.delta_l_subarray == 0.0)
        assert np.all(golden.sample_vth(100) == 0.0)

    def test_golden_chip_id_is_sentinel(self):
        assert VariationSampler.golden(NODE_32NM).chip_id == -1
