"""3-level quad-tree correlated variation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.variation import QuadTreeSampler


@pytest.fixture
def grid_sampler():
    return QuadTreeSampler.grid(2, 4)


class TestConstruction:
    def test_grid_positions_count(self, grid_sampler):
        assert grid_sampler.n_sites == 8

    def test_grid_positions_in_unit_square(self, grid_sampler):
        for x, y in grid_sampler.positions:
            assert 0.0 <= x <= 1.0
            assert 0.0 <= y <= 1.0

    def test_rejects_empty_positions(self):
        with pytest.raises(ConfigurationError):
            QuadTreeSampler(positions=())

    def test_rejects_positions_outside_square(self):
        with pytest.raises(ConfigurationError):
            QuadTreeSampler(positions=((1.5, 0.5),))

    def test_rejects_zero_levels(self):
        with pytest.raises(ConfigurationError):
            QuadTreeSampler(positions=((0.5, 0.5),), levels=0)

    def test_rejects_bad_grid(self):
        with pytest.raises(ConfigurationError):
            QuadTreeSampler.grid(0, 4)


class TestSampling:
    def test_zero_sigma_gives_zeros(self, grid_sampler):
        rng = np.random.default_rng(0)
        assert np.all(grid_sampler.sample(0.0, rng) == 0.0)

    def test_negative_sigma_rejected(self, grid_sampler):
        with pytest.raises(ConfigurationError):
            grid_sampler.sample(-1.0, np.random.default_rng(0))

    def test_output_shape(self, grid_sampler):
        sample = grid_sampler.sample(1.0, np.random.default_rng(1))
        assert sample.shape == (8,)

    def test_total_variance_matches_sigma(self, grid_sampler):
        rng = np.random.default_rng(2)
        draws = np.array([grid_sampler.sample(2.0, rng) for _ in range(4000)])
        std = draws.std()
        assert std == pytest.approx(2.0, rel=0.05)

    def test_deterministic_given_rng_state(self, grid_sampler):
        a = grid_sampler.sample(1.0, np.random.default_rng(42))
        b = grid_sampler.sample(1.0, np.random.default_rng(42))
        assert np.array_equal(a, b)

    def test_same_quadrant_sites_correlated(self):
        # Two sites in the same deepest region share all components.
        sampler = QuadTreeSampler(positions=((0.1, 0.1), (0.12, 0.12)))
        rng = np.random.default_rng(3)
        draws = np.array([sampler.sample(1.0, rng) for _ in range(2000)])
        corr = np.corrcoef(draws[:, 0], draws[:, 1])[0, 1]
        assert corr > 0.95

    def test_far_sites_weakly_correlated(self):
        sampler = QuadTreeSampler(positions=((0.05, 0.05), (0.95, 0.95)))
        rng = np.random.default_rng(4)
        draws = np.array([sampler.sample(1.0, rng) for _ in range(4000)])
        corr = np.corrcoef(draws[:, 0], draws[:, 1])[0, 1]
        # Only the top-level (whole-die) component is shared: 1/3.
        assert corr == pytest.approx(1 / 3, abs=0.08)


class TestPrecomputedRegionIndices:
    """The per-level region indices are built once in ``__post_init__``.

    Regression for the per-call recomputation: precomputing must not
    change a single bit of the sampled values or the model correlation.
    """

    def test_cached_indices_match_fresh_computation(self, grid_sampler):
        for level in range(grid_sampler.levels):
            fresh = grid_sampler._compute_region_indices(level)
            cached = grid_sampler._region_indices(level)
            assert np.array_equal(fresh, cached)
            # The cache hands back the same array object every time.
            assert grid_sampler._region_indices(level) is cached

    def test_one_index_tuple_per_level(self, grid_sampler):
        assert len(grid_sampler._level_indices) == grid_sampler.levels

    def test_sampling_bit_identical_across_instances(self):
        # Two independently constructed (hence independently precomputed)
        # samplers must produce byte-identical draws from equal rng state.
        a = QuadTreeSampler.grid(4, 4).sample(1.3, np.random.default_rng(77))
        b = QuadTreeSampler.grid(4, 4).sample(1.3, np.random.default_rng(77))
        assert a.tobytes() == b.tobytes()

    def test_correlation_unchanged_by_precompute(self):
        sampler = QuadTreeSampler(positions=((0.05, 0.05), (0.95, 0.95)))
        # Analytic anchors that held before the precompute refactor.
        assert sampler.correlation(0, 0) == pytest.approx(1.0)
        assert sampler.correlation(0, 1) == pytest.approx(1 / 3)


class TestModelCorrelation:
    def test_identical_site_full_correlation(self, grid_sampler):
        assert grid_sampler.correlation(0, 0) == pytest.approx(1.0)

    def test_correlation_matches_empirical(self):
        sampler = QuadTreeSampler(positions=((0.05, 0.05), (0.95, 0.95)))
        assert sampler.correlation(0, 1) == pytest.approx(1 / 3)

    def test_correlation_index_validation(self, grid_sampler):
        with pytest.raises(ConfigurationError):
            grid_sampler.correlation(0, 99)

    def test_neighbours_more_correlated_than_diagonal(self, grid_sampler):
        # Sites 0 and 1 are adjacent; sites 0 and 7 are opposite corners.
        assert grid_sampler.correlation(0, 1) >= grid_sampler.correlation(0, 7)
