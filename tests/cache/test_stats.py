"""Cache statistics container."""

import pytest

from repro.cache import AccessOutcome, CacheStats


class TestDerivedMetrics:
    def test_accesses(self):
        stats = CacheStats(loads=10, stores=5)
        assert stats.accesses == 15

    def test_misses_sum_causes(self):
        stats = CacheStats(
            misses_cold=3, misses_expired=2, misses_dead_bypass=1
        )
        assert stats.misses == 6

    def test_miss_rate(self):
        stats = CacheStats(loads=10, misses_cold=2)
        assert stats.miss_rate == pytest.approx(0.2)

    def test_miss_rate_empty_window(self):
        assert CacheStats().miss_rate == 0.0

    def test_expired_miss_rate(self):
        stats = CacheStats(loads=10, misses_expired=1)
        assert stats.expired_miss_rate == pytest.approx(0.1)

    def test_port_accesses(self):
        stats = CacheStats(loads=10, stores=5, fills=4, writebacks=2)
        assert stats.port_accesses == 21

    def test_blocked_cycles(self):
        stats = CacheStats(refresh_blocked_cycles=10, move_blocked_cycles=6)
        assert stats.blocked_cycles == 16


class TestMerge:
    def test_merge_adds_fields(self):
        a = CacheStats(loads=3, hits=2, line_moves=1)
        b = CacheStats(loads=4, hits=1, line_refreshes=7)
        merged = a.merge(b)
        assert merged.loads == 7
        assert merged.hits == 3
        assert merged.line_moves == 1
        assert merged.line_refreshes == 7

    def test_merge_does_not_mutate(self):
        a = CacheStats(loads=3)
        a.merge(CacheStats(loads=4))
        assert a.loads == 3


class TestOutcomeEnum:
    def test_values(self):
        assert AccessOutcome.HIT.value == "hit"
        assert AccessOutcome.MISS_EXPIRED.value == "miss_expired"
        assert AccessOutcome.MISS_DEAD_BYPASS.value == "miss_dead_bypass"
