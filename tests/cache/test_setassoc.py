"""Set-associative L2 simulator and the real-L2 mode."""

import pytest

from repro.errors import ConfigurationError
from repro.cache import CacheConfig, RetentionAwareCache
from repro.cache.setassoc import SetAssociativeCache


@pytest.fixture
def cold_l2():
    return SetAssociativeCache(
        capacity_bytes=4096, line_bytes=64, ways=2, assume_warm=False
    )


class TestSetAssociativeCache:
    def test_geometry(self, cold_l2):
        assert cold_l2.n_lines == 64
        assert cold_l2.n_sets == 32

    def test_cold_first_touch_misses(self, cold_l2):
        assert not cold_l2.access(5)
        assert cold_l2.miss_rate == 1.0

    def test_second_touch_hits(self, cold_l2):
        cold_l2.access(5)
        assert cold_l2.access(5)
        assert cold_l2.hits == 1

    def test_lru_eviction(self, cold_l2):
        # Three lines mapping to the same set of a 2-way cache.
        for line in (0, 32, 64):
            cold_l2.access(line)
        assert not cold_l2.access(0)  # evicted by 64
        assert cold_l2.access(64)

    def test_dirty_eviction_counts_writeback(self, cold_l2):
        cold_l2.access(0, is_write=True)
        cold_l2.access(32)
        cold_l2.access(64)  # evicts dirty line 0
        assert cold_l2.writebacks == 1

    def test_clean_eviction_silent(self, cold_l2):
        cold_l2.access(0)
        cold_l2.access(32)
        cold_l2.access(64)
        assert cold_l2.writebacks == 0

    def test_fill_dirty_not_a_demand_access(self, cold_l2):
        cold_l2.fill_dirty(7)
        assert cold_l2.accesses == 0
        # But the line is resident and dirty.
        assert cold_l2.access(7)

    def test_warm_start_first_touch_hits(self):
        warm = SetAssociativeCache(
            capacity_bytes=4096, line_bytes=64, ways=2, assume_warm=True
        )
        assert warm.access(5)
        assert warm.miss_rate == 0.0

    def test_warm_start_still_misses_after_window_eviction(self):
        warm = SetAssociativeCache(
            capacity_bytes=4096, line_bytes=64, ways=2, assume_warm=True
        )
        for line in (0, 32, 64):  # same set; 0 evicted within the window
            warm.access(line)
        assert not warm.access(0)

    def test_reset_stats_keeps_contents(self, cold_l2):
        cold_l2.access(5)
        cold_l2.reset_stats()
        assert cold_l2.accesses == 0
        assert cold_l2.access(5)  # still resident

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(capacity_bytes=0)
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(ways=0)
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(capacity_bytes=100, line_bytes=64, ways=3)


class TestRealL2Mode:
    def test_flag_builds_l2(self, small_geometry):
        config = CacheConfig(geometry=small_geometry, real_l2=True)
        cache = RetentionAwareCache(config)
        assert cache.l2_cache is not None
        assert cache.l2_cache.capacity_bytes == 2 * 1024 * 1024

    def test_default_has_no_l2_simulator(self, small_config):
        assert RetentionAwareCache(small_config).l2_cache is None

    def test_l2_counters_track_misses(self, small_geometry):
        config = CacheConfig(geometry=small_geometry, real_l2=True)
        cache = RetentionAwareCache(config)
        for tag in range(6):
            cache.access(tag, tag * 8, False)
        stats = cache.finalize(100)
        assert stats.l2_hits + stats.l2_misses == stats.misses
        # Warm-start L2: first touches hit.
        assert stats.l2_misses == 0

    def test_measured_rate_property(self, small_geometry):
        config = CacheConfig(geometry=small_geometry, real_l2=True)
        cache = RetentionAwareCache(config)
        cache.access(0, 8, False)
        assert cache.stats.measured_l2_miss_rate == 0.0

    def test_writebacks_reach_l2(self, small_geometry):
        config = CacheConfig(geometry=small_geometry, real_l2=True)
        cache = RetentionAwareCache(config)
        cache.access(0, 8, True)  # dirty fill (set 0, tag 1)
        for tag in range(2, 6):
            cache.access(tag, tag * 8, False)  # evicts the dirty line
        assert cache.stats.writebacks == 1
        # The written-back line is L2-resident: reloading hits the L2.
        cache.access(10, 8, False)
        assert cache.stats.l2_misses == 0
