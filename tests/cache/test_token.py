"""Token-arbitrated scheduled refresh (section 4.3.1)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.cache import (
    AccessOutcome,
    FullRefresh,
    PartialRefresh,
    RetentionAwareCache,
)
from repro.cache.token import TokenRefreshEngine


def addr(set_index, tag, n_sets=8):
    return tag * n_sets + set_index


@pytest.fixture
def engine(small_geometry):
    return TokenRefreshEngine(small_geometry, margin_cycles=100)


class TestEngine:
    def test_default_margin_is_pass_sized(self, small_geometry):
        engine = TokenRefreshEngine(small_geometry)
        assert engine.margin_cycles == (
            small_geometry.rows_per_pair
            * small_geometry.refresh_cycles_per_line
        )

    def test_can_sustain_threshold(self, engine, small_geometry):
        per_line = small_geometry.refresh_cycles_per_line
        assert not engine.can_sustain(100 + per_line)
        assert engine.can_sustain(101 + per_line)

    def test_schedule_and_service(self, engine):
        assert engine.schedule(0, 1, 4, fill_cycle=0, retention_cycles=1000)
        assert engine.pending() == 1
        assert engine.due_refreshes(500) == []  # due at 900
        serviced = engine.due_refreshes(950)
        assert serviced == [(900, 0, 1)]
        assert engine.refreshes_done == 1

    def test_unsustainable_line_rejected(self, engine):
        assert not engine.schedule(0, 1, 4, fill_cycle=0, retention_cycles=50)
        assert engine.pending() == 0

    def test_cancel_makes_entry_stale(self, engine):
        engine.schedule(0, 1, 4, fill_cycle=0, retention_cycles=1000)
        engine.cancel(0, 1)
        assert engine.due_refreshes(10_000) == []

    def test_token_serializes_same_pair(self, small_geometry):
        engine = TokenRefreshEngine(small_geometry, margin_cycles=100)
        # Two lines of the same set in DIFFERENT pairs: parallel service.
        engine.schedule(0, 0, 4, fill_cycle=0, retention_cycles=1000)
        engine.schedule(0, 1, 4, fill_cycle=0, retention_cycles=1000)
        serviced = dict(
            ((s, w), t) for t, s, w in engine.due_refreshes(2000)
        )
        assert serviced[(0, 0)] == serviced[(0, 1)] == 900

        # Two lines in the SAME pair (same way, different sets with the
        # same pair id): serialized by the token.
        engine2 = TokenRefreshEngine(small_geometry, margin_cycles=100)
        engine2.schedule(0, 0, 4, fill_cycle=0, retention_cycles=1000)
        engine2.schedule(1, 0, 4, fill_cycle=0, retention_cycles=1000)
        times = sorted(t for t, _, _ in engine2.due_refreshes(5000))
        per_line = small_geometry.refresh_cycles_per_line
        assert times[1] == times[0] + per_line
        assert engine2.max_token_wait == per_line

    def test_busy_fraction(self, engine, small_geometry):
        engine.schedule(0, 1, 4, fill_cycle=0, retention_cycles=1000)
        engine.due_refreshes(2000)
        fraction = engine.pair_busy_fraction(2000)
        expected = small_geometry.refresh_cycles_per_line / (
            2000 * small_geometry.n_pairs
        )
        assert fraction == pytest.approx(expected)

    def test_validation(self, small_geometry):
        with pytest.raises(ConfigurationError):
            TokenRefreshEngine(small_geometry, margin_cycles=-1)
        engine = TokenRefreshEngine(small_geometry)
        with pytest.raises(ConfigurationError):
            engine.pair_busy_fraction(0)
        with pytest.raises(ConfigurationError):
            engine.pending(pair=99)


class TestOnlineRefreshInController:
    def make_online(self, config, retention, refresh):
        return RetentionAwareCache(
            config, retention, replacement="DSP", refresh=refresh,
            quantize=False, online_refresh=True,
        )

    def test_full_refresh_keeps_data_alive_online(
        self, small_config, uniform_retention
    ):
        cache = self.make_online(
            small_config, uniform_retention, FullRefresh()
        )
        cache.access(0, addr(0, 1), False)
        # 10_000-cycle retention, margin 512: refreshed repeatedly.
        assert cache.access(60_000, addr(0, 1), False) is AccessOutcome.HIT
        assert cache.stats.line_refreshes >= 5

    def test_online_counts_match_lazy_counts(
        self, small_config, uniform_retention
    ):
        lazy = RetentionAwareCache(
            small_config, uniform_retention, replacement="DSP",
            refresh=FullRefresh(), quantize=False,
        )
        online = self.make_online(
            small_config, uniform_retention, FullRefresh()
        )
        pattern = [(t * 1500, addr(0, 1 + (t % 3))) for t in range(40)]
        for cycle, line in pattern:
            lazy.access(cycle, line, False)
            online.access(cycle, line, False)
        lazy_stats = lazy.finalize(70_000)
        online_stats = online.finalize(70_000)
        assert lazy_stats.hits == online_stats.hits
        # Refresh counts agree within the scheduling margin (the online
        # engine refreshes slightly early by design).
        assert online_stats.line_refreshes == pytest.approx(
            lazy_stats.line_refreshes, abs=max(3, lazy_stats.line_refreshes)
            * 0.35,
        )

    def test_partial_refresh_respects_threshold_online(
        self, small_config, small_geometry
    ):
        retention = np.full((small_geometry.n_sets, small_geometry.ways), 2500)
        cache = self.make_online(
            small_config, retention, PartialRefresh(threshold_cycles=6000)
        )
        cache.access(0, addr(0, 1), False)
        # Early refreshes keep it alive through the threshold...
        assert cache.access(4_500, addr(0, 1), False) is AccessOutcome.HIT
        # ...but refreshing stops once the guarantee is met; far later the
        # data is gone.
        assert (
            cache.access(60_000, addr(0, 1), False)
            is AccessOutcome.MISS_EXPIRED
        )

    def test_unsustainable_lines_behave_like_no_refresh(
        self, small_config, small_geometry
    ):
        # Retention below the token margin: the hardware cannot promise a
        # refresh, so the line simply expires.
        margin = (
            small_geometry.rows_per_pair
            * small_geometry.refresh_cycles_per_line
        )
        retention = np.full(
            (small_geometry.n_sets, small_geometry.ways), margin // 2
        )
        cache = self.make_online(
            small_config, retention, FullRefresh()
        )
        cache.access(0, addr(0, 1), False)
        assert (
            cache.access(margin, addr(0, 1), False)
            is AccessOutcome.MISS_EXPIRED
        )
        assert cache.stats.line_refreshes == 0

    def test_online_flag_ignored_for_no_refresh(self, small_config):
        cache = RetentionAwareCache(
            small_config, online_refresh=True
        )
        assert cache.refresh_engine is None
