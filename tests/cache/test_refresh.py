"""Refresh policies."""

import math

import pytest

from repro.errors import ChipDiscardedError, ConfigurationError
from repro.cache import (
    FullRefresh,
    GlobalRefresh,
    NoRefresh,
    PartialRefresh,
    make_refresh_policy,
)


class TestNoRefresh:
    def test_lifetime_is_retention(self):
        assert NoRefresh().effective_lifetime(5000) == 5000.0

    def test_dead_line_zero_lifetime(self):
        assert NoRefresh().effective_lifetime(0) == 0.0

    def test_never_refreshes(self):
        assert NoRefresh().refresh_count(1_000_000, 100) == 0


class TestPartialRefresh:
    @pytest.fixture
    def policy(self):
        return PartialRefresh(threshold_cycles=6000)

    def test_long_lines_untouched(self, policy):
        assert policy.effective_lifetime(9000) == 9000.0
        assert policy.refresh_count(100_000, 9000) == 0

    def test_short_line_guaranteed_threshold(self, policy):
        # 2500-cycle line: refreshed until ceil(6000/2500)=3 periods.
        assert policy.effective_lifetime(2500) == 7500.0
        assert policy.effective_lifetime(2500) >= policy.threshold_cycles

    def test_short_line_refresh_cap(self, policy):
        assert policy.max_refreshes(2500) == 2

    def test_refresh_count_grows_with_age(self, policy):
        assert policy.refresh_count(2499, 2500) == 0
        assert policy.refresh_count(2500, 2500) == 1
        assert policy.refresh_count(5200, 2500) == 2

    def test_refresh_count_capped(self, policy):
        assert policy.refresh_count(1_000_000, 2500) == 2

    def test_dead_line_never_refreshed(self, policy):
        assert policy.effective_lifetime(0) == 0.0
        assert policy.refresh_count(100, 0) == 0

    def test_exactly_at_threshold_untouched(self, policy):
        assert policy.effective_lifetime(6000) == 6000.0
        assert policy.max_refreshes(6000) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PartialRefresh(threshold_cycles=0)


class TestFullRefresh:
    def test_lines_never_expire(self):
        assert math.isinf(FullRefresh().effective_lifetime(100))

    def test_dead_line_still_dead(self):
        assert FullRefresh().effective_lifetime(0) == 0.0

    def test_refresh_every_period(self):
        assert FullRefresh().refresh_count(10_000, 2500) == 4

    def test_refresh_count_zero_before_first_period(self):
        assert FullRefresh().refresh_count(2499, 2500) == 0


class TestGlobalRefresh:
    def test_operable_chip(self):
        policy = GlobalRefresh(chip_retention_cycles=8000, pass_cycles=2048)
        assert math.isinf(policy.effective_lifetime(1))
        assert policy.duty == pytest.approx(2048 / 8000)

    def test_passes_in_window(self):
        policy = GlobalRefresh(chip_retention_cycles=8000, pass_cycles=2048)
        assert policy.passes_in_window(25_000) == 3

    def test_discards_chip_below_pass_time(self):
        with pytest.raises(ChipDiscardedError):
            GlobalRefresh(chip_retention_cycles=2000, pass_cycles=2048)

    def test_discards_dead_chip(self):
        with pytest.raises(ChipDiscardedError):
            GlobalRefresh(chip_retention_cycles=0)

    def test_window_validation(self):
        policy = GlobalRefresh(chip_retention_cycles=8000)
        with pytest.raises(ConfigurationError):
            policy.passes_in_window(-1)


class TestFactory:
    @pytest.mark.parametrize(
        "name, cls",
        [
            ("no-refresh", NoRefresh),
            ("partial-refresh", PartialRefresh),
            ("full-refresh", FullRefresh),
            ("No_Refresh", NoRefresh),
        ],
    )
    def test_names(self, name, cls):
        assert isinstance(make_refresh_policy(name), cls)

    def test_global_needs_retention(self):
        policy = make_refresh_policy(
            "global-refresh", chip_retention_cycles=9000
        )
        assert isinstance(policy, GlobalRefresh)

    def test_partial_threshold_forwarded(self):
        policy = make_refresh_policy(
            "partial-refresh", partial_threshold_cycles=1234
        )
        assert policy.threshold_cycles == 1234

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_refresh_policy("sometimes-refresh")
