"""Write-through (no-write-allocate) cache mode."""

import pytest

from repro.cache import AccessOutcome, CacheConfig, RetentionAwareCache


def addr(set_index, tag, n_sets=8):
    return tag * n_sets + set_index


@pytest.fixture
def wt_config(small_geometry):
    return CacheConfig(geometry=small_geometry, write_back=False)


class TestWriteThrough:
    def test_store_goes_to_l2_immediately(self, wt_config):
        cache = RetentionAwareCache(wt_config)
        cache.access(0, addr(0, 1), True)
        assert cache.l2.writes == 1
        assert cache.stats.write_throughs == 1

    def test_store_miss_does_not_allocate(self, wt_config):
        cache = RetentionAwareCache(wt_config)
        assert cache.access(0, addr(0, 1), True) is AccessOutcome.MISS_COLD
        # The line was not filled: a load misses too.
        assert cache.access(1, addr(0, 1), False) is AccessOutcome.MISS_COLD

    def test_store_hit_updates_without_dirtying(self, wt_config):
        cache = RetentionAwareCache(wt_config)
        cache.access(0, addr(0, 1), False)  # load allocates
        assert cache.access(1, addr(0, 1), True) is AccessOutcome.HIT
        set_state = cache.sets[0]
        assert not any(set_state.dirty)

    def test_no_writebacks_ever(self, wt_config, uniform_retention):
        cache = RetentionAwareCache(
            wt_config, uniform_retention, replacement="DSP", quantize=False
        )
        cache.access(0, addr(0, 1), False)
        cache.access(1, addr(0, 1), True)
        # Let the line expire and get replaced.
        for tag in range(2, 8):
            cache.access(20_000 + tag, addr(0, tag), False)
        stats = cache.finalize(50_000)
        assert stats.writebacks == 0
        assert stats.expiry_writebacks == 0

    def test_expiring_data_needs_no_action(self, wt_config, uniform_retention):
        """Section 4.3.1: write-through caches need no expiry write-back."""
        cache = RetentionAwareCache(
            wt_config, uniform_retention, replacement="DSP", quantize=False
        )
        cache.access(0, addr(0, 1), False)
        cache.access(1, addr(0, 1), True)
        outcome = cache.access(20_000, addr(0, 1), False)
        assert outcome is AccessOutcome.MISS_EXPIRED
        assert cache.stats.expiry_writebacks == 0

    def test_write_buffer_pressure_from_stores(self, wt_config):
        config = CacheConfig(
            geometry=wt_config.geometry,
            write_back=False,
            write_buffer_entries=2,
            l2_write_interval_cycles=100,
        )
        cache = RetentionAwareCache(config)
        for i in range(6):
            cache.access(i, addr(0, 1), True)
        assert cache.stats.write_buffer_stall_cycles > 0

    def test_port_accounting_includes_write_throughs(self, wt_config):
        cache = RetentionAwareCache(wt_config)
        cache.access(0, addr(0, 1), False)
        cache.access(1, addr(0, 1), True)
        stats = cache.finalize(10)
        assert stats.port_accesses >= stats.accesses + stats.write_throughs


class TestWriteBackDefault:
    def test_default_is_write_back(self, small_geometry):
        assert CacheConfig(geometry=small_geometry).write_back

    def test_with_ways_preserves_flag(self, wt_config):
        assert not wt_config.with_ways(2).write_back
