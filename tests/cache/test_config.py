"""Cache configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.cache import CacheConfig


class TestDefaults:
    def test_paper_values(self):
        config = CacheConfig()
        assert config.hit_latency_cycles == 3
        assert config.counter_bits == 3
        assert config.partial_refresh_threshold_cycles == 6000
        assert config.geometry.ways == 4

    def test_miss_latency_blend(self):
        config = CacheConfig(
            l2_latency_cycles=10, memory_latency_cycles=210, l2_miss_rate=0.1
        )
        assert config.miss_latency_cycles == pytest.approx(
            0.9 * 10 + 0.1 * 210
        )


class TestWithWays:
    @pytest.mark.parametrize("ways", [1, 2, 8])
    def test_changes_only_geometry(self, ways):
        config = CacheConfig().with_ways(ways)
        assert config.geometry.ways == ways
        assert config.hit_latency_cycles == 3
        assert config.partial_refresh_threshold_cycles == 6000


class TestValidation:
    def test_l2_must_exceed_hit_latency(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(hit_latency_cycles=5, l2_latency_cycles=5)

    def test_memory_must_exceed_l2(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(l2_latency_cycles=12, memory_latency_cycles=12)

    def test_miss_rate_range(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(l2_miss_rate=1.2)

    def test_counter_bits_positive(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(counter_bits=0)

    def test_threshold_positive(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(partial_refresh_threshold_cycles=0)

    def test_write_buffer_positive(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(write_buffer_entries=0)
