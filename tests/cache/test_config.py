"""Cache configuration."""

import dataclasses
import warnings

import pytest

from repro.errors import ConfigurationError
from repro.array import CacheGeometry
from repro.cache import CacheConfig
from repro.cache.config import (
    DEFAULT_L2_CAPACITY_BYTES,
    DEFAULT_L2_WAYS,
    default_l2_geometry,
)


class TestDefaults:
    def test_paper_values(self):
        config = CacheConfig()
        assert config.hit_latency_cycles == 3
        assert config.counter_bits == 3
        assert config.partial_refresh_threshold_cycles == 6000
        assert config.geometry.ways == 4

    def test_miss_latency_blend(self):
        config = CacheConfig(
            l2_latency_cycles=10, memory_latency_cycles=210, l2_miss_rate=0.1
        )
        assert config.miss_latency_cycles == pytest.approx(
            0.9 * 10 + 0.1 * 210
        )


class TestWithWays:
    @pytest.mark.parametrize("ways", [1, 2, 8])
    def test_changes_only_geometry(self, ways):
        config = CacheConfig().with_ways(ways)
        assert config.geometry.ways == ways
        assert config.hit_latency_cycles == 3
        assert config.partial_refresh_threshold_cycles == 6000


class TestGeometryDerivedFields:
    def test_hit_latency_reads_the_geometry(self):
        geometry = CacheGeometry.from_capacity(256 * 1024, 8, banks=8)
        config = CacheConfig(geometry=geometry)
        assert config.hit_latency_cycles == geometry.access_latency_cycles

    def test_explicit_hit_latency_still_overrides(self):
        assert CacheConfig(hit_latency_cycles=5).hit_latency_cycles == 5

    def test_with_geometry_rederives_latency(self):
        slow = CacheConfig().with_geometry(
            CacheGeometry.from_capacity(256 * 1024, 4, banks=2)
        )
        assert slow.hit_latency_cycles == slow.geometry.access_latency_cycles
        assert slow.hit_latency_cycles > 3

    def test_l2_geometry_concrete_by_default(self):
        config = CacheConfig()
        assert config.l2_geometry == default_l2_geometry()
        assert config.l2_capacity_bytes == DEFAULT_L2_CAPACITY_BYTES
        assert config.l2_ways == DEFAULT_L2_WAYS


class TestRemovedL2Keywords:
    def test_legacy_keywords_are_hard_errors(self):
        with pytest.raises(ConfigurationError, match="l2_geometry"):
            CacheConfig(l2_capacity_bytes=1024 * 1024, l2_ways=8)

    def test_single_legacy_keyword_is_a_hard_error(self):
        with pytest.raises(ConfigurationError, match="l2_geometry"):
            CacheConfig(l2_ways=8)

    def test_mirrors_stay_readable(self):
        config = CacheConfig(
            l2_geometry=CacheGeometry.from_capacity(1024 * 1024, 8)
        )
        assert config.l2_capacity_bytes == 1024 * 1024
        assert config.l2_ways == 8

    def test_l2_geometry_keyword_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = CacheConfig(
                l2_geometry=CacheGeometry.from_capacity(1024 * 1024, 8)
            )
        assert config.l2_ways == 8

    def test_replace_round_trip_is_silent(self):
        # The concrete mirrors written back after resolution must not
        # re-trigger the deprecation shim on dataclasses.replace.
        config = CacheConfig()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            replaced = dataclasses.replace(config, counter_bits=4)
        assert replaced.l2_geometry == config.l2_geometry

    def test_disagreeing_legacy_value_raises(self):
        with pytest.raises(ConfigurationError, match="deprecated keyword"):
            CacheConfig(
                l2_geometry=CacheGeometry.from_capacity(1024 * 1024, 8),
                l2_ways=4,
            )


class TestValidation:
    def test_l2_must_exceed_hit_latency(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(hit_latency_cycles=5, l2_latency_cycles=5)

    def test_memory_must_exceed_l2(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(l2_latency_cycles=12, memory_latency_cycles=12)

    def test_miss_rate_range(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(l2_miss_rate=1.2)

    def test_counter_bits_positive(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(counter_bits=0)

    def test_threshold_positive(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(partial_refresh_threshold_cycles=0)

    def test_write_buffer_positive(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(write_buffer_entries=0)
