"""Retention-aware cache controller semantics."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.cache import (
    AccessOutcome,
    FullRefresh,
    GlobalRefresh,
    NoRefresh,
    PartialRefresh,
    RetentionAwareCache,
)


def make_cache(config, retention=None, replacement="LRU", refresh=None,
               quantize=False):
    return RetentionAwareCache(
        config,
        retention_cycles=retention,
        replacement=replacement,
        refresh=refresh,
        quantize=quantize,
    )


def addr(set_index, tag, n_sets=8):
    """Line address landing in ``set_index`` with ``tag``."""
    return tag * n_sets + set_index


class TestBasicHitMiss:
    def test_first_access_is_cold_miss(self, small_config):
        cache = make_cache(small_config)
        assert cache.access(0, addr(0, 1), False) is AccessOutcome.MISS_COLD

    def test_second_access_hits(self, small_config):
        cache = make_cache(small_config)
        cache.access(0, addr(0, 1), False)
        assert cache.access(10, addr(0, 1), False) is AccessOutcome.HIT

    def test_different_sets_do_not_conflict(self, small_config):
        cache = make_cache(small_config)
        cache.access(0, addr(0, 1), False)
        assert cache.access(1, addr(1, 1), False) is AccessOutcome.MISS_COLD
        assert cache.access(2, addr(0, 1), False) is AccessOutcome.HIT

    def test_fills_all_ways_before_evicting(self, small_config):
        cache = make_cache(small_config)
        for tag in range(4):
            cache.access(tag, addr(0, tag), False)
        for tag in range(4):
            assert cache.access(10 + tag, addr(0, tag), False) is AccessOutcome.HIT

    def test_lru_evicts_least_recent(self, small_config):
        cache = make_cache(small_config)
        for tag in range(4):
            cache.access(tag, addr(0, tag), False)
        cache.access(10, addr(0, 0), False)  # refresh tag 0's recency
        cache.access(11, addr(0, 4), False)  # evicts tag 1
        assert cache.access(12, addr(0, 0), False) is AccessOutcome.HIT
        assert cache.access(13, addr(0, 1), False) is AccessOutcome.MISS_COLD

    def test_stats_accounting(self, small_config):
        cache = make_cache(small_config)
        cache.access(0, addr(0, 1), False)
        cache.access(1, addr(0, 1), True)
        stats = cache.finalize(100)
        assert stats.loads == 1
        assert stats.stores == 1
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.hits + stats.misses == stats.accesses

    def test_monotonic_cycles_enforced(self, small_config):
        cache = make_cache(small_config)
        cache.access(100, addr(0, 1), False)
        with pytest.raises(SimulationError):
            cache.access(50, addr(0, 2), False)

    def test_access_after_finalize_rejected(self, small_config):
        cache = make_cache(small_config)
        cache.finalize(10)
        with pytest.raises(SimulationError):
            cache.access(20, addr(0, 1), False)


class TestExpiry:
    def test_line_expires_after_retention(self, small_config, uniform_retention):
        cache = make_cache(small_config, uniform_retention)
        cache.access(0, addr(0, 1), False)
        assert (
            cache.access(9_999, addr(0, 1), False) is AccessOutcome.HIT
        )
        # A new fill restarts the clock; expire it properly this time.
        cache.access(20_000, addr(1, 1), False)
        assert (
            cache.access(31_000, addr(1, 1), False)
            is AccessOutcome.MISS_EXPIRED
        )

    def test_expired_line_refills_and_hits_again(
        self, small_config, uniform_retention
    ):
        cache = make_cache(small_config, uniform_retention)
        cache.access(0, addr(0, 1), False)
        cache.access(15_000, addr(0, 1), False)  # expired -> refill
        assert cache.access(16_000, addr(0, 1), False) is AccessOutcome.HIT

    def test_ideal_cache_never_expires(self, small_config):
        cache = make_cache(small_config)
        cache.access(0, addr(0, 1), False)
        assert (
            cache.access(10_000_000, addr(0, 1), False) is AccessOutcome.HIT
        )

    def test_store_does_not_extend_retention(
        self, small_config, uniform_retention
    ):
        # Only a full-line fill/refresh rewrites the whole line; a store
        # hit does not reset the retention clock (conservative model).
        cache = make_cache(small_config, uniform_retention)
        cache.access(0, addr(0, 1), False)
        cache.access(5_000, addr(0, 1), True)
        assert (
            cache.access(11_000, addr(0, 1), False)
            is AccessOutcome.MISS_EXPIRED
        )

    def test_dirty_expired_line_written_back(
        self, small_config, uniform_retention
    ):
        cache = make_cache(small_config, uniform_retention)
        cache.access(0, addr(0, 1), True)
        cache.access(20_000, addr(0, 1), False)
        stats = cache.finalize(30_000)
        assert stats.expiry_writebacks == 1
        assert stats.writebacks == 1

    def test_clean_expired_line_not_written_back(
        self, small_config, uniform_retention
    ):
        cache = make_cache(small_config, uniform_retention)
        cache.access(0, addr(0, 1), False)
        cache.access(20_000, addr(0, 1), False)
        stats = cache.finalize(30_000)
        assert stats.expiry_writebacks == 0


class TestWritebacks:
    def test_dirty_eviction_writes_back(self, small_config):
        cache = make_cache(small_config)
        cache.access(0, addr(0, 0), True)
        for tag in range(1, 5):
            cache.access(tag, addr(0, tag), False)
        stats = cache.finalize(100)
        assert stats.writebacks == 1

    def test_clean_eviction_silent(self, small_config):
        cache = make_cache(small_config)
        for tag in range(5):
            cache.access(tag, addr(0, tag), False)
        stats = cache.finalize(100)
        assert stats.writebacks == 0

    def test_l2_sees_miss_traffic(self, small_config):
        cache = make_cache(small_config)
        for tag in range(5):
            cache.access(tag, addr(0, tag), False)
        assert cache.l2.accesses == 5


class TestRefreshAccounting:
    def test_no_refresh_counts_nothing(self, small_config, uniform_retention):
        cache = make_cache(
            small_config, uniform_retention, refresh=NoRefresh()
        )
        cache.access(0, addr(0, 1), False)
        stats = cache.finalize(50_000)
        assert stats.line_refreshes == 0

    def test_full_refresh_counts_periods(self, small_config, uniform_retention):
        cache = make_cache(
            small_config, uniform_retention, refresh=FullRefresh()
        )
        cache.access(0, addr(0, 1), False)
        stats = cache.finalize(45_000)
        assert stats.line_refreshes == 4  # ages 10k, 20k, 30k, 40k

    def test_full_refresh_keeps_data_alive(
        self, small_config, uniform_retention
    ):
        cache = make_cache(
            small_config, uniform_retention, refresh=FullRefresh()
        )
        cache.access(0, addr(0, 1), False)
        assert cache.access(95_000, addr(0, 1), False) is AccessOutcome.HIT

    def test_partial_refresh_guarantees_threshold(
        self, small_config, small_geometry
    ):
        retention = np.full(
            (small_geometry.n_sets, small_geometry.ways), 2_500
        )
        cache = make_cache(
            small_config,
            retention,
            refresh=PartialRefresh(threshold_cycles=6_000),
        )
        cache.access(0, addr(0, 1), False)
        assert cache.access(5_900, addr(0, 1), False) is AccessOutcome.HIT
        # Effective lifetime is ceil(6000/2500)*2500 = 7500 cycles.
        assert (
            cache.access(8_000, addr(0, 1), False)
            is AccessOutcome.MISS_EXPIRED
        )

    def test_refresh_blocks_ports(self, small_config, uniform_retention):
        cache = make_cache(
            small_config, uniform_retention, refresh=FullRefresh()
        )
        cache.access(0, addr(0, 1), False)
        stats = cache.finalize(45_000)
        per_line = small_config.geometry.refresh_cycles_per_line
        assert stats.refresh_blocked_cycles == stats.line_refreshes * per_line


class TestGlobalRefreshScheme:
    def test_counts_passes_over_window(self, small_config):
        refresh = GlobalRefresh(
            chip_retention_cycles=10_000,
            pass_cycles=small_config.geometry.refresh_cycles_full_pass,
        )
        cache = make_cache(small_config, refresh=refresh)
        cache.access(0, addr(0, 1), False)
        stats = cache.finalize(50_000)
        lines = small_config.geometry.n_lines
        assert stats.line_refreshes == 5 * lines
        assert (
            stats.refresh_blocked_cycles
            == 5 * small_config.geometry.refresh_cycles_full_pass
        )

    def test_data_never_expires(self, small_config):
        refresh = GlobalRefresh(
            chip_retention_cycles=10_000,
            pass_cycles=small_config.geometry.refresh_cycles_full_pass,
        )
        cache = make_cache(small_config, refresh=refresh)
        cache.access(0, addr(0, 1), False)
        assert cache.access(500_000, addr(0, 1), False) is AccessOutcome.HIT


class TestWarmup:
    def test_warmup_excluded_from_stats(self, small_config):
        cache = make_cache(small_config)
        cycles = np.array([0, 1, 2, 3])
        lines = np.array([addr(0, 1), addr(0, 2), addr(0, 1), addr(0, 3)])
        writes = np.zeros(4, dtype=bool)
        stats = cache.run_trace(cycles, lines, writes, warmup_references=2)
        assert stats.accesses == 2
        assert stats.hits == 1  # the post-warmup access to tag 1
        assert stats.misses == 1

    def test_reset_stats_keeps_cache_state(self, small_config):
        cache = make_cache(small_config)
        cache.access(0, addr(0, 1), False)
        cache.reset_stats()
        assert cache.stats.accesses == 0
        assert cache.access(5, addr(0, 1), False) is AccessOutcome.HIT

    def test_quantization_applied_by_default(
        self, small_config, small_geometry
    ):
        retention = np.full(
            (small_geometry.n_sets, small_geometry.ways), 10_500
        )
        cache = RetentionAwareCache(small_config, retention)
        # Counter step = ceil(10500/7) = 1500; floor(10500/1500)*1500 = 10500.
        assert cache.counter is not None
        assert np.all(cache.retention_grid <= 10_500)
