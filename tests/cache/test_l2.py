"""L2 model and write buffer."""

import pytest

from repro.errors import ConfigurationError
from repro.cache import L2Model, WriteBuffer


class TestWriteBuffer:
    def test_accepts_up_to_capacity_without_stall(self):
        buffer = WriteBuffer(capacity=4, drain_interval_cycles=100)
        stalls = [buffer.push(0) for _ in range(4)]
        assert sum(stalls) == 0

    def test_overflow_stalls(self):
        buffer = WriteBuffer(capacity=2, drain_interval_cycles=100)
        buffer.push(0)
        buffer.push(0)
        stall = buffer.push(0)
        assert stall == 100
        assert buffer.stall_cycles == 100

    def test_drain_frees_slots(self):
        buffer = WriteBuffer(capacity=2, drain_interval_cycles=10)
        buffer.push(0)
        buffer.push(0)
        # 20 cycles later two entries have drained.
        assert buffer.push(20) == 0

    def test_burst_after_idle_fits(self):
        buffer = WriteBuffer(capacity=8, drain_interval_cycles=4)
        for _ in range(8):
            assert buffer.push(1000) == 0

    def test_out_of_order_pushes_tolerated(self):
        # Lazily-discovered expiry write-backs may arrive time-stamped in
        # the past; the buffer treats them as happening now.
        buffer = WriteBuffer(capacity=4, drain_interval_cycles=10)
        buffer.push(100)
        buffer.push(50)  # earlier stamp
        assert buffer.writebacks == 2

    def test_occupancy_tracks(self):
        buffer = WriteBuffer(capacity=4, drain_interval_cycles=100)
        buffer.push(0)
        buffer.push(0)
        assert buffer.occupancy == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WriteBuffer(capacity=0)
        with pytest.raises(ConfigurationError):
            WriteBuffer(drain_interval_cycles=0)


class TestL2Model:
    def test_average_latency_blend(self):
        l2 = L2Model(latency_cycles=12, memory_latency_cycles=212, miss_rate=0.1)
        assert l2.average_latency_cycles == pytest.approx(0.9 * 12 + 0.1 * 212)

    def test_read_counts_access(self):
        l2 = L2Model()
        latency = l2.read()
        assert latency == l2.average_latency_cycles
        assert l2.accesses == 1

    def test_write_counts(self):
        l2 = L2Model()
        l2.write()
        assert l2.writes == 1
        assert l2.accesses == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            L2Model(latency_cycles=0)
        with pytest.raises(ConfigurationError):
            L2Model(latency_cycles=20, memory_latency_cycles=10)
        with pytest.raises(ConfigurationError):
            L2Model(miss_rate=1.5)
