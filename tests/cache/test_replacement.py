"""Placement policies: LRU, DSP, RSP-FIFO, RSP-LRU."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.cache import (
    AccessOutcome,
    DSPPolicy,
    LRUPolicy,
    RSPFIFOPolicy,
    RSPLRUPolicy,
    RetentionAwareCache,
    make_replacement_policy,
)


def addr(set_index, tag, n_sets=8):
    return tag * n_sets + set_index


def make_cache(config, retention, replacement):
    return RetentionAwareCache(
        config, retention_cycles=retention, replacement=replacement,
        quantize=False,
    )


@pytest.fixture
def graded_retention(small_geometry):
    """Way w of every set retains for (w+1) * 4000 cycles; way 3 longest."""
    grid = np.zeros((small_geometry.n_sets, small_geometry.ways), dtype=np.int64)
    for way in range(small_geometry.ways):
        grid[:, way] = (way + 1) * 4000
    return grid


@pytest.fixture
def one_dead_way(small_geometry):
    """Way 0 of every set is dead; others retain for 50_000 cycles."""
    grid = np.full(
        (small_geometry.n_sets, small_geometry.ways), 50_000, dtype=np.int64
    )
    grid[:, 0] = 0
    return grid


@pytest.fixture
def all_dead(small_geometry):
    return np.zeros((small_geometry.n_sets, small_geometry.ways), dtype=np.int64)


class TestFactory:
    @pytest.mark.parametrize(
        "name, cls",
        [
            ("LRU", LRUPolicy),
            ("dsp", DSPPolicy),
            ("RSP-FIFO", RSPFIFOPolicy),
            ("rsp_lru", RSPLRUPolicy),
        ],
    )
    def test_lookup(self, name, cls):
        assert isinstance(make_replacement_policy(name), cls)

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            make_replacement_policy("MRU")

    def test_retention_awareness_flags(self):
        assert not LRUPolicy.uses_retention_info
        assert DSPPolicy.uses_retention_info
        assert RSPFIFOPolicy.uses_retention_info


class TestLRUWithDeadWays:
    def test_lru_fills_dead_ways(self, small_config, one_dead_way):
        """Retention-blind LRU keeps using the dead way: every reuse of a
        block that landed there misses (the paper's failure mode)."""
        cache = make_cache(small_config, one_dead_way, "LRU")
        # Fill all 4 ways; one block lands in the dead way 0.
        for tag in range(4):
            cache.access(tag, addr(0, tag), False)
        # The dead-way block has already expired; touching every tag
        # again produces exactly one expiry miss.
        outcomes = [
            cache.access(100 + tag, addr(0, tag), False) for tag in range(4)
        ]
        assert outcomes.count(AccessOutcome.MISS_EXPIRED) == 1

    def test_dead_way_is_a_miss_magnet(self, small_config, one_dead_way):
        cache = make_cache(small_config, one_dead_way, "LRU")
        for tag in range(4):
            cache.access(tag, addr(0, tag), False)
        stats_before = cache.stats.misses_expired
        # Keep re-touching the same working set: the dead way keeps
        # looking free (expired lines are invalidated), so LRU keeps
        # refilling it and reuses keep missing.
        for round_idx in range(5):
            for tag in range(4):
                cache.access(1000 * (round_idx + 1) + tag, addr(0, tag), False)
        assert cache.stats.misses_expired > stats_before


class TestDSP:
    def test_dsp_never_uses_dead_way(self, small_config, one_dead_way):
        cache = make_cache(small_config, one_dead_way, "DSP")
        for tag in range(8):
            cache.access(tag, addr(0, tag), False)
        stats = cache.finalize(100)
        assert stats.misses_expired == 0

    def test_dsp_lru_among_live_ways(self, small_config, one_dead_way):
        cache = make_cache(small_config, one_dead_way, "DSP")
        # 3 live ways; fill them with tags 0..2.
        for tag in range(3):
            cache.access(tag, addr(0, tag), False)
        cache.access(10, addr(0, 0), False)  # tag 0 most recent
        cache.access(11, addr(0, 3), False)  # evicts tag 1 (LRU live)
        assert cache.access(12, addr(0, 0), False) is AccessOutcome.HIT
        assert cache.access(13, addr(0, 1), False) is AccessOutcome.MISS_COLD

    def test_all_dead_set_bypasses(self, small_config, all_dead):
        cache = make_cache(small_config, all_dead, "DSP")
        outcome = cache.access(0, addr(0, 1), False)
        assert outcome is AccessOutcome.MISS_DEAD_BYPASS
        # Nothing was allocated; the next access bypasses again.
        assert (
            cache.access(1, addr(0, 1), False)
            is AccessOutcome.MISS_DEAD_BYPASS
        )

    def test_bypass_counts_l2_access(self, small_config, all_dead):
        cache = make_cache(small_config, all_dead, "DSP")
        cache.access(0, addr(0, 1), False)
        assert cache.stats.l2_accesses == 1


class TestRSPFIFO:
    def test_new_block_lands_in_longest_way(
        self, small_config, graded_retention
    ):
        cache = make_cache(small_config, graded_retention, "RSP-FIFO")
        cache.access(0, addr(0, 1), False)
        set_state = cache.sets[0]
        longest_way = set_state.retention_order[0]
        assert set_state.valid[longest_way]
        assert set_state.tags[longest_way] == 1

    def test_fills_shift_blocks_down_the_order(
        self, small_config, graded_retention
    ):
        cache = make_cache(small_config, graded_retention, "RSP-FIFO")
        cache.access(0, addr(0, 1), False)
        cache.access(1, addr(0, 2), False)
        set_state = cache.sets[0]
        order = set_state.retention_order
        assert set_state.tags[order[0]] == 2  # newest in longest way
        assert set_state.tags[order[1]] == 1  # pushed one step down
        assert cache.stats.line_moves == 1

    def test_eviction_from_shortest_live_way(
        self, small_config, graded_retention
    ):
        cache = make_cache(small_config, graded_retention, "RSP-FIFO")
        for tag in range(5):
            cache.access(tag, addr(0, tag), False)
        # tag 0 was pushed through the whole chain and fell out.
        assert cache.access(10, addr(0, 0), False) is AccessOutcome.MISS_COLD

    def test_moves_refresh_the_data(self, small_config, graded_retention):
        cache = make_cache(small_config, graded_retention, "RSP-FIFO")
        cache.access(0, addr(0, 1), False)  # into way with 16000 retention
        cache.access(15_000, addr(0, 2), False)  # pushes tag 1, rewriting it
        # tag 1 now sits in the 12000-retention way with a fresh clock:
        # alive until ~27000.
        assert cache.access(26_000, addr(0, 1), False) is AccessOutcome.HIT

    def test_dead_ways_excluded_from_chain(self, small_config, one_dead_way):
        cache = make_cache(small_config, one_dead_way, "RSP-FIFO")
        for tag in range(8):
            cache.access(tag, addr(0, tag), False)
        assert cache.stats.misses_expired == 0

    def test_all_dead_bypasses(self, small_config, all_dead):
        cache = make_cache(small_config, all_dead, "RSP-FIFO")
        assert (
            cache.access(0, addr(0, 1), False)
            is AccessOutcome.MISS_DEAD_BYPASS
        )

    def test_move_port_cost_counted(self, small_config, graded_retention):
        cache = make_cache(small_config, graded_retention, "RSP-FIFO")
        for tag in range(4):
            cache.access(tag, addr(0, tag), False)
        per_line = small_config.geometry.refresh_cycles_per_line
        assert cache.stats.move_blocked_cycles == (
            cache.stats.line_moves * per_line
        )


class TestRSPLRU:
    def test_hit_promotes_to_longest_way(self, small_config, graded_retention):
        cache = make_cache(small_config, graded_retention, "RSP-LRU")
        cache.access(0, addr(0, 1), False)
        cache.access(1, addr(0, 2), False)  # tag 2 now in longest way
        cache.access(2, addr(0, 1), False)  # hit on tag 1 -> promoted
        set_state = cache.sets[0]
        order = set_state.retention_order
        assert set_state.tags[order[0]] == 1
        assert set_state.tags[order[1]] == 2

    def test_hit_on_longest_way_is_free(self, small_config, graded_retention):
        cache = make_cache(small_config, graded_retention, "RSP-LRU")
        cache.access(0, addr(0, 1), False)
        moves_before = cache.stats.line_moves
        cache.access(1, addr(0, 1), False)
        assert cache.stats.line_moves == moves_before

    def test_promotion_refreshes_block(self, small_config, graded_retention):
        cache = make_cache(small_config, graded_retention, "RSP-LRU")
        cache.access(0, addr(0, 1), False)
        cache.access(1, addr(0, 2), False)
        # Promote tag 1 at cycle 10_000; it gets the 16000-retention way
        # with a fresh clock.
        cache.access(10_000, addr(0, 1), False)
        assert cache.access(25_000, addr(0, 1), False) is AccessOutcome.HIT

    def test_shuffles_more_than_fifo(self, small_config, graded_retention):
        fifo = make_cache(small_config, graded_retention, "RSP-FIFO")
        lru = make_cache(small_config, graded_retention, "RSP-LRU")
        pattern = [(t, addr(0, 1 + (t % 3))) for t in range(30)]
        for cycle, line in pattern:
            fifo.access(cycle, line, False)
            lru.access(cycle, line, False)
        assert lru.stats.line_moves > fifo.stats.line_moves
