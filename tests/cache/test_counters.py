"""Line-counter quantisation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.cache import LineCounterConfig, quantize_retention


class TestLineCounterConfig:
    def test_defaults(self):
        counter = LineCounterConfig()
        assert counter.bits == 3
        assert counter.max_count == 7

    def test_max_cycles(self):
        counter = LineCounterConfig(bits=3, step_cycles=1000)
        assert counter.max_cycles == 7000

    def test_for_chip_spans_max_retention(self):
        counter = LineCounterConfig.for_chip(14000.0)
        assert counter.max_cycles >= 14000
        assert counter.step_cycles == 2000

    def test_for_chip_degenerate(self):
        counter = LineCounterConfig.for_chip(0.0)
        assert counter.step_cycles == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LineCounterConfig(bits=0)
        with pytest.raises(ConfigurationError):
            LineCounterConfig(step_cycles=0)


class TestQuantization:
    @pytest.fixture
    def counter(self):
        return LineCounterConfig(bits=3, step_cycles=1000)

    def test_floors_to_step(self, counter):
        assert quantize_retention(2999, counter) == 2000

    def test_exact_multiple_unchanged(self, counter):
        assert quantize_retention(3000, counter) == 3000

    def test_below_one_step_is_dead(self, counter):
        assert quantize_retention(999, counter) == 0

    def test_clamps_to_counter_range(self, counter):
        assert quantize_retention(1_000_000, counter) == 7000

    def test_never_exceeds_input(self, counter):
        values = np.linspace(0, 20000, 101)
        quantized = quantize_retention(values, counter)
        assert np.all(quantized <= values)

    def test_vectorised_dtype(self, counter):
        values = np.array([500.0, 1500.0, 9500.0])
        quantized = quantize_retention(values, counter)
        assert quantized.dtype == np.int64
        assert list(quantized) == [0, 1000, 7000]

    def test_scalar_returns_int(self, counter):
        assert isinstance(quantize_retention(1500, counter), int)

    def test_rejects_negative(self, counter):
        with pytest.raises(ConfigurationError):
            quantize_retention(-1.0, counter)
