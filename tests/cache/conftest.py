"""Shared fixtures: a small but fully valid cache for fast unit tests."""

import numpy as np
import pytest

from repro.array import CacheGeometry
from repro.cache import CacheConfig

SMALL_SETS = 8
SMALL_WAYS = 4


@pytest.fixture
def small_geometry():
    """A 2KB, 8-set, 4-way cache with the paper's structural ratios."""
    return CacheGeometry(
        size_bytes=2048,
        line_bits=512,
        ways=SMALL_WAYS,
        n_subarrays=8,
        subarray_rows=64,
        subarray_cols=32,
        sense_amps_per_pair=64,
    )


@pytest.fixture
def small_config(small_geometry):
    return CacheConfig(geometry=small_geometry)


@pytest.fixture
def uniform_retention(small_geometry):
    """Every line retains for 10_000 cycles."""
    return np.full(
        (small_geometry.n_sets, small_geometry.ways), 10_000, dtype=np.int64
    )
