"""Unit-conversion helpers."""

import pytest

from repro import units


def test_thermal_voltage_at_80c():
    # kT/q at 353.15 K is about 30.4 mV.
    assert units.thermal_voltage(80.0) == pytest.approx(30.4e-3, rel=0.01)


def test_thermal_voltage_increases_with_temperature():
    assert units.thermal_voltage(100.0) > units.thermal_voltage(25.0)


@pytest.mark.parametrize(
    "forward, backward, value",
    [
        (units.ns, units.to_ns, 476.3),
        (units.ps, units.to_ps, 208.0),
        (units.us, units.to_us, 5.8),
        (units.nm, units.to_nm, 32.0),
        (units.um, units.to_um, 0.23),
        (units.mw, units.to_mw, 78.2),
        (units.fj, units.to_fj, 1.5),
        (units.pj, units.to_pj, 2.4),
    ],
)
def test_roundtrip_conversions(forward, backward, value):
    assert backward(forward(value)) == pytest.approx(value, rel=1e-12)


def test_ns_magnitude():
    assert units.ns(1.0) == pytest.approx(1e-9)


def test_ghz_magnitude():
    assert units.ghz(4.3) == pytest.approx(4.3e9)


def test_to_ghz_inverts_ghz():
    assert units.to_ghz(units.ghz(3.5)) == pytest.approx(3.5)


def test_cycles_to_seconds():
    # 2048 cycles at 4.3 GHz is the paper's 476.3ns refresh pass.
    seconds = units.cycles_to_seconds(2048, units.ghz(4.3))
    assert seconds == pytest.approx(476.3e-9, rel=1e-3)


def test_seconds_to_cycles_inverts():
    frequency = units.ghz(3.0)
    assert units.seconds_to_cycles(
        units.cycles_to_seconds(1000, frequency), frequency
    ) == pytest.approx(1000)


def test_simulation_temperature_is_80c():
    assert units.SIMULATION_TEMPERATURE_C == 80.0
