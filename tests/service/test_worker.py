"""The persistent worker loop, driven in-process via ``max_tasks``."""

import os

import pytest

from repro.errors import ConfigurationError
from repro.service.queue import DurableTaskQueue, ERROR, OK, TaskEnvelope
from repro.service.worker import resolve_function, serve
from repro.variation import harmonic_mean


class TestResolveFunction:
    def test_resolves_module_level_callable(self):
        fn = resolve_function("repro.variation", "harmonic_mean")
        assert fn is harmonic_mean

    def test_resolves_dotted_qualnames(self):
        fn = resolve_function("repro.service.queue", "TaskEnvelope.for_call")
        assert fn == TaskEnvelope.for_call

    def test_non_callable_is_an_error(self):
        with pytest.raises(ConfigurationError, match="non-callable"):
            resolve_function("repro.service.queue", "OK")


class TestServe:
    def test_executes_claimed_tasks(self, tmp_path):
        queue = DurableTaskQueue(tmp_path / "q")
        queue.enqueue("k1", TaskEnvelope.for_call(harmonic_mean, [2.0, 2.0]))
        queue.enqueue("k2", TaskEnvelope.for_call(harmonic_mean, [4.0, 4.0]))
        executed = serve(tmp_path / "q", "w0", max_tasks=2)
        assert executed == 2
        assert queue.read_result("k1") == (OK, 2.0)
        assert queue.read_result("k2") == (OK, 4.0)

    def test_records_worker_pid(self, tmp_path):
        queue = DurableTaskQueue(tmp_path / "q")
        serve(tmp_path / "q", "w7", max_tasks=0)
        pid_file = queue.workers_dir / "w7.pid"
        assert pid_file.read_text().strip() == str(os.getpid())

    def test_task_exceptions_become_error_results(self, tmp_path):
        queue = DurableTaskQueue(tmp_path / "q")
        queue.enqueue(
            "kbad", TaskEnvelope.for_call(harmonic_mean, "not numbers")
        )
        executed = serve(tmp_path / "q", "w0", max_tasks=1)
        assert executed == 1
        status, reason = queue.read_result("kbad")
        assert status == ERROR
        assert reason  # the exception text survives

    def test_unresolvable_function_becomes_error_result(self, tmp_path):
        queue = DurableTaskQueue(tmp_path / "q")
        queue.enqueue(
            "kmissing",
            TaskEnvelope("repro.variation", "no_such_function", 1),
        )
        serve(tmp_path / "q", "w0", max_tasks=1)
        status, reason = queue.read_result("kmissing")
        assert status == ERROR

    def test_stop_sentinel_ends_the_loop(self, tmp_path):
        queue = DurableTaskQueue(tmp_path / "q")
        queue.enqueue("k1", TaskEnvelope.for_call(harmonic_mean, [1.0]))
        queue.request_stop()
        executed = serve(tmp_path / "q", "w0", max_tasks=5)
        assert executed == 0
        assert queue.pending_tasks() == ["k1"]

    def test_dead_parent_ends_the_loop(self, tmp_path):
        queue = DurableTaskQueue(tmp_path / "q")
        queue.enqueue("k1", TaskEnvelope.for_call(harmonic_mean, [1.0]))
        # A pid that cannot be a live parent of this test.
        executed = serve(
            tmp_path / "q", "w0", parent_pid=2 ** 22 + 1, max_tasks=5
        )
        assert executed == 0
