"""The subprocess-fleet executor: identity, dedupe, crash recovery."""

import os
import signal
import sys
import textwrap

import pytest

from repro.engine.config import EngineConfig, SUBPROCESS_FLEET_BACKEND
from repro.engine.parallel import ParallelChipRunner
from repro.errors import ConfigurationError
from repro.service.fleet import SubprocessFleetExecutor, resolve_queue_dir
from repro.variation import harmonic_mean

TASKS = [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0], [2.0, 9.0], [7.0, 8.0]]


def fleet_config(tmp_path, **overrides) -> EngineConfig:
    fields = dict(
        workers=2,
        backend=SUBPROCESS_FLEET_BACKEND,
        fleet_size=2,
        queue_dir=tmp_path / "queue",
    )
    fields.update(overrides)
    return EngineConfig(**fields)


class TestQueueDirResolution:
    def test_explicit_queue_dir_wins(self, tmp_path):
        config = fleet_config(tmp_path, checkpoint_dir=tmp_path / "ckpt")
        path, private = resolve_queue_dir(config)
        assert path == tmp_path / "queue"
        assert private is False

    def test_checkpoint_dir_hosts_the_queue(self, tmp_path):
        config = EngineConfig(
            backend=SUBPROCESS_FLEET_BACKEND,
            checkpoint_dir=tmp_path / "ckpt",
        )
        path, private = resolve_queue_dir(config)
        assert path == tmp_path / "ckpt" / "fleet-queue"
        assert private is False

    def test_fallback_is_a_private_tempdir(self):
        config = EngineConfig(backend=SUBPROCESS_FLEET_BACKEND)
        path, private = resolve_queue_dir(config)
        try:
            assert private is True
            assert path.is_dir()
        finally:
            path.rmdir()

    def test_task_timeout_unsupported(self, tmp_path):
        config = fleet_config(tmp_path, task_timeout=1.0)
        with pytest.raises(ConfigurationError, match="task_timeout"):
            SubprocessFleetExecutor(config)


class TestFleetIdentity:
    def test_results_identical_to_local_backend(self, tmp_path):
        with ParallelChipRunner(fleet_config(tmp_path)) as runner:
            fleet = runner.map(harmonic_mean, TASKS, label="identity")
        with ParallelChipRunner(EngineConfig(workers=1)) as runner:
            local = runner.map(harmonic_mean, TASKS, label="identity")
        assert fleet == local

    def test_shared_queue_dedupes_across_runs(self, tmp_path):
        config = fleet_config(tmp_path)
        with ParallelChipRunner(config) as runner:
            first = runner.map(harmonic_mean, TASKS, label="dedupe")
        # A second runner over the same queue directory never recomputes.
        with ParallelChipRunner(config) as runner:
            runner.map(harmonic_mean, TASKS, label="dedupe")
            executor = runner._backend_executor
            assert executor.deduped == len(TASKS)
            second = [
                v for v in runner.map(harmonic_mean, TASKS, label="dedupe")
            ]
        assert second == first

    def test_duplicate_keys_within_a_batch_fan_out(self, tmp_path):
        tasks = [[2.0, 2.0], [2.0, 2.0], [4.0, 4.0]]
        with ParallelChipRunner(fleet_config(tmp_path)) as runner:
            out = runner.map(harmonic_mean, tasks, label="fanout")
        assert out == [2.0, 2.0, 4.0]


SLOW_MODULE = textwrap.dedent(
    """
    import time

    def slow_square(task):
        delay, value = task
        time.sleep(delay)
        return value * value
    """
)


@pytest.fixture
def slow_helper(tmp_path, monkeypatch):
    """An importable module whose tasks are slow enough to kill under."""
    helper_dir = tmp_path / "helpers"
    helper_dir.mkdir()
    (helper_dir / "fleet_test_helper.py").write_text(SLOW_MODULE)
    monkeypatch.syspath_prepend(str(helper_dir))
    existing = os.environ.get("PYTHONPATH")
    monkeypatch.setenv(
        "PYTHONPATH",
        str(helper_dir) if not existing
        else os.pathsep.join([str(helper_dir), existing]),
    )
    import importlib

    importlib.invalidate_caches()
    module = importlib.import_module("fleet_test_helper")
    try:
        yield module
    finally:
        sys.modules.pop("fleet_test_helper", None)


class TestCrashRecovery:
    def test_sigkilled_worker_is_respawned_and_batch_completes(
        self, tmp_path, slow_helper
    ):
        from repro.engine.checkpoint import task_key
        from repro.service.backends import BatchItem

        tasks = [(0.25, n) for n in range(6)]
        config = fleet_config(tmp_path, fleet_size=2)
        executor = SubprocessFleetExecutor(config)
        batch = [
            BatchItem(i, task_key(slow_helper.slow_square, t), t)
            for i, t in enumerate(tasks)
        ]
        results = {}
        killed = {"done": False}
        try:
            for index, value in executor.run_batch(
                slow_helper.slow_square, batch, lambda e: None,
                label="sigkill",
            ):
                results[index] = value
                if not killed["done"] and executor._workers:
                    # First result observed: SIGKILL a live worker while
                    # the rest of the batch is still in flight.
                    worker = sorted(executor._workers)[0]
                    os.kill(executor._workers[worker].pid, signal.SIGKILL)
                    killed["done"] = True
        finally:
            executor.close()
        assert killed["done"], "no worker was alive to kill"
        assert results == {i: n * n for i, (_, n) in enumerate(tasks)}

    def test_results_byte_identical_after_worker_sigkill(
        self, tmp_path, slow_helper
    ):
        import pickle

        tasks = [(0.0, n) for n in range(6)]
        reference = [slow_helper.slow_square(t) for t in tasks]
        config = fleet_config(
            tmp_path, fleet_size=2, queue_dir=tmp_path / "q2"
        )
        with ParallelChipRunner(config) as runner:
            out = runner.map(slow_helper.slow_square, tasks, label="ident")
        assert pickle.dumps(out) == pickle.dumps(reference)
