"""The execution-backend registry and the engine's backend routing."""

import pytest

from repro.engine.config import (
    EngineConfig,
    LOCAL_BACKEND,
    SUBPROCESS_FLEET_BACKEND,
)
from repro.engine.events import TaskRetried
from repro.engine.parallel import ParallelChipRunner
from repro.errors import ConfigurationError, ExecutionError
from repro.service.backends import (
    BatchExecutor,
    BatchItem,
    ExecutionBackend,
    LocalBackend,
    SubprocessFleetBackend,
    execution_backend_names,
    get_execution_backend,
    register_execution_backend,
)
from repro.variation import harmonic_mean


class TestRegistry:
    def test_builtins_are_registered(self):
        names = execution_backend_names()
        assert LOCAL_BACKEND in names
        assert SUBPROCESS_FLEET_BACKEND in names

    def test_lookup_by_name(self):
        assert isinstance(get_execution_backend(LOCAL_BACKEND), LocalBackend)
        assert isinstance(
            get_execution_backend(SUBPROCESS_FLEET_BACKEND),
            SubprocessFleetBackend,
        )

    def test_unknown_backend_is_an_error(self):
        with pytest.raises(ConfigurationError, match="unknown execution"):
            get_execution_backend("carrier-pigeon")

    def test_custom_backend_registration(self):
        class Probe(ExecutionBackend):
            name = "probe-backend"

            def executor(self, config):
                raise NotImplementedError

        try:
            register_execution_backend(Probe())
            assert "probe-backend" in execution_backend_names()
        finally:
            from repro.service import backends

            backends._BACKENDS.pop("probe-backend", None)

    def test_empty_name_rejected(self):
        class Nameless(ExecutionBackend):
            def executor(self, config):
                raise NotImplementedError

        with pytest.raises(ConfigurationError, match="non-empty"):
            register_execution_backend(Nameless())


class TestEngineConfigBackendField:
    def test_default_is_local(self):
        assert EngineConfig().backend == LOCAL_BACKEND

    def test_fleet_size_defaults_to_workers(self):
        config = EngineConfig(workers=3, backend=SUBPROCESS_FLEET_BACKEND)
        assert config.effective_fleet_size == 3

    def test_explicit_fleet_size_wins(self):
        config = EngineConfig(
            workers=2, backend=SUBPROCESS_FLEET_BACKEND, fleet_size=5
        )
        assert config.effective_fleet_size == 5

    def test_invalid_fleet_size_rejected(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(fleet_size=0)

    def test_replace_round_trips_backend_fields(self, tmp_path):
        config = EngineConfig(
            backend=SUBPROCESS_FLEET_BACKEND,
            fleet_size=4,
            queue_dir=tmp_path / "q",
        )
        clone = config.replace(workers=8)
        assert clone.backend == SUBPROCESS_FLEET_BACKEND
        assert clone.fleet_size == 4
        assert clone.queue_dir == tmp_path / "q"


class TestInlineExecutor:
    def test_local_backend_runs_batches(self):
        executor = get_execution_backend(LOCAL_BACKEND).executor(
            EngineConfig()
        )
        items = [
            BatchItem(0, "k0", [2.0, 2.0]),
            BatchItem(1, "k1", [4.0, 4.0]),
        ]
        out = dict(executor.run_batch(harmonic_mean, items, lambda e: None))
        assert out == {0: 2.0, 1: 4.0}
        executor.close()

    def test_retry_budget_and_events(self):
        config = EngineConfig(max_retries=1)
        executor = get_execution_backend(LOCAL_BACKEND).executor(config)
        seen = []
        with pytest.raises(ExecutionError):
            list(executor.run_batch(
                harmonic_mean,
                [BatchItem(0, "k0", None)],
                seen.append,
            ))
        assert any(isinstance(e, TaskRetried) for e in seen)


class TestRunnerBackendRouting:
    def test_unknown_backend_fails_at_resolution(self):
        # Config accepts any name (third-party backends register later);
        # the runner fails loudly when it first resolves the name.
        config = EngineConfig(workers=1, backend="carrier-pigeon")
        with ParallelChipRunner(config) as runner:
            with pytest.raises(ConfigurationError, match="carrier-pigeon"):
                runner.map(harmonic_mean, [[1.0, 2.0]])

    def test_empty_backend_name_rejected_by_config(self):
        with pytest.raises(ConfigurationError, match="backend"):
            EngineConfig(backend="")

    def test_runner_close_is_safe_without_backend_use(self):
        runner = ParallelChipRunner(EngineConfig(workers=1))
        runner.close()


class _RecordingExecutor(BatchExecutor):
    def __init__(self):
        self.batches = 0
        self.closed = False

    def run_batch(self, fn, items, notify, label="batch"):
        self.batches += 1
        for item in items:
            yield item.index, fn(item.task)

    def close(self):
        self.closed = True


class TestRunnerUsesRegisteredBackend:
    def test_map_routes_through_backend_executor(self):
        recorder = _RecordingExecutor()

        class Recording(ExecutionBackend):
            name = "recording"

            def executor(self, config):
                return recorder

        from repro.service import backends

        register_execution_backend(Recording())
        try:
            config = EngineConfig(workers=1).replace(backend="recording")
            with ParallelChipRunner(config) as runner:
                out = runner.map(harmonic_mean, [[2.0, 2.0], [4.0, 4.0]])
            assert out == [2.0, 4.0]
            assert recorder.batches == 1
            assert recorder.closed
        finally:
            backends._BACKENDS.pop("recording", None)
