"""The durable task queue: claims, results, dedupe, requeue."""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.service.queue import DurableTaskQueue, ERROR, OK, TaskEnvelope
from repro.variation import harmonic_mean


def envelope(task):
    return TaskEnvelope.for_call(harmonic_mean, task)


class TestTaskEnvelope:
    def test_for_call_records_module_and_qualname(self):
        env = envelope([1.0, 2.0])
        assert env.fn_module == harmonic_mean.__module__
        assert env.fn_qualname == "harmonic_mean"
        assert env.task == [1.0, 2.0]

    def test_rejects_lambdas_and_locals(self):
        with pytest.raises(ConfigurationError, match="module-level"):
            TaskEnvelope.for_call(lambda x: x, 1)

        def local_fn(x):
            return x

        with pytest.raises(ConfigurationError, match="module-level"):
            TaskEnvelope.for_call(local_fn, 1)

    def test_rejects_main_module_functions(self):
        def fake(x):
            return x

        fake.__module__ = "__main__"
        fake.__qualname__ = "fake"
        with pytest.raises(ConfigurationError, match="module-level"):
            TaskEnvelope.for_call(fake, 1)


class TestEnqueueClaimComplete:
    def test_round_trip(self, tmp_path):
        queue = DurableTaskQueue(tmp_path / "q")
        assert queue.enqueue("k1", envelope([1.0, 2.0]))
        claimed = queue.claim("w0")
        assert claimed is not None
        key, env = claimed
        assert key == "k1"
        assert env.task == [1.0, 2.0]
        queue.complete("w0", "k1", OK, 42.0)
        assert queue.read_result("k1") == (OK, 42.0)
        # The claim was released after the result landed.
        assert not queue.claim_path("w0", "k1").exists()

    def test_enqueue_dedupes_against_pending_tasks(self, tmp_path):
        queue = DurableTaskQueue(tmp_path / "q")
        assert queue.enqueue("k1", envelope([1.0])) is True
        assert queue.enqueue("k1", envelope([1.0])) is False
        assert queue.pending_tasks() == ["k1"]

    def test_enqueue_dedupes_against_completed_results(self, tmp_path):
        queue = DurableTaskQueue(tmp_path / "q")
        queue.enqueue("k1", envelope([1.0]))
        key, _ = queue.claim("w0")
        queue.complete("w0", key, OK, 7.0)
        # Fleet-wide dedupe: a finished key never re-enters the queue.
        assert queue.enqueue("k1", envelope([1.0])) is False
        assert queue.pending_tasks() == []

    def test_claim_returns_none_on_empty_queue(self, tmp_path):
        queue = DurableTaskQueue(tmp_path / "q")
        assert queue.claim("w0") is None

    def test_claims_are_exclusive(self, tmp_path):
        queue = DurableTaskQueue(tmp_path / "q")
        queue.enqueue("k1", envelope([1.0]))
        assert queue.claim("w0") is not None
        assert queue.claim("w1") is None

    def test_error_results_round_trip(self, tmp_path):
        queue = DurableTaskQueue(tmp_path / "q")
        queue.enqueue("k1", envelope([1.0]))
        key, _ = queue.claim("w0")
        queue.complete("w0", key, ERROR, "ValueError: boom")
        assert queue.read_result("k1") == (ERROR, "ValueError: boom")
        queue.discard_result("k1")
        assert queue.read_result("k1") is None

    def test_unreadable_result_is_a_miss(self, tmp_path):
        queue = DurableTaskQueue(tmp_path / "q")
        queue.result_path("k1").write_bytes(b"not a pickle")
        assert queue.read_result("k1") is None

    def test_unreadable_task_completes_with_error(self, tmp_path):
        queue = DurableTaskQueue(tmp_path / "q")
        queue.task_path("kbad").write_bytes(b"garbage")
        assert queue.claim("w0") is None
        status, value = queue.read_result("kbad")
        assert status == ERROR


class TestRequeueAndStop:
    def test_requeue_worker_restores_claims(self, tmp_path):
        queue = DurableTaskQueue(tmp_path / "q")
        queue.enqueue("k1", envelope([1.0]))
        queue.enqueue("k2", envelope([2.0]))
        queue.claim("w0")
        queue.claim("w0")
        assert queue.pending_tasks() == []
        requeued = queue.requeue_worker("w0")
        assert sorted(requeued) == ["k1", "k2"]
        assert queue.pending_tasks() == ["k1", "k2"]

    def test_requeue_skips_completed_keys(self, tmp_path):
        queue = DurableTaskQueue(tmp_path / "q")
        queue.enqueue("k1", envelope([1.0]))
        key, _ = queue.claim("w0")
        # Result written but claim never released (worker died between):
        # the stale claim must not resurrect finished work.
        pickle_path = queue.result_path(key)
        pickle_path.write_bytes(pickle.dumps((OK, 1.5)))
        requeued = queue.requeue_worker("w0")
        assert requeued == []
        assert queue.pending_tasks() == []

    def test_stop_sentinel(self, tmp_path):
        queue = DurableTaskQueue(tmp_path / "q")
        assert not queue.stop_requested()
        queue.request_stop()
        assert queue.stop_requested()
        queue.clear_stop()
        assert not queue.stop_requested()

    def test_worker_pid_breadcrumb(self, tmp_path):
        queue = DurableTaskQueue(tmp_path / "q")
        queue.write_worker_pid("w0", 12345)
        assert (queue.workers_dir / "w0.pid").read_text().strip() == "12345"
