"""Execution-service test package (namespaced: test module basenames
here collide with tests/experiments and tests/technology)."""
