"""The ``python -m repro.service`` command-line surface."""

import pytest

from repro.service.cli import build_parser, main

ARGS = ["--chips", "2", "--refs", "400", "--seed", "9"]


def root_args(tmp_path):
    return ["--root", str(tmp_path / "svc")]


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["submit", "fig10_hundred_chips"],
            ["serve"],
            ["watch", "job-00000"],
            ["jobs"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_submit_defaults_mirror_the_paper_point(self):
        args = build_parser().parse_args(["submit", "table3"])
        assert (args.chips, args.refs, args.seed) == (60, 8000, 2007)
        assert args.technology == "3t1d"
        assert args.backend == "local"
        assert args.detach is False

    def test_command_is_required(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestSubmitCommand:
    def test_submit_runs_and_reports(self, tmp_path, capsys):
        rc = main(
            ["submit", "fig10_hundred_chips", *ARGS, "--wait"]
            + root_args(tmp_path)
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert out.startswith("job-00000\n")
        assert "Figure 10" in out

    def test_unknown_experiment_is_a_clean_error(self, tmp_path, capsys):
        rc = main(
            ["submit", "no_such_experiment"] + root_args(tmp_path)
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_detach_then_serve_then_jobs(self, tmp_path, capsys):
        root = root_args(tmp_path)
        assert main(
            ["submit", "fig10_hundred_chips", *ARGS, "--detach"] + root
        ) == 0
        job_id = capsys.readouterr().out.strip()

        assert main(["serve"] + root) == 0
        assert f"started {job_id}" in capsys.readouterr().out

        assert main(["jobs"] + root) == 0
        listing = capsys.readouterr().out
        assert job_id in listing
        assert "done" in listing

    def test_jobs_on_empty_root(self, tmp_path, capsys):
        assert main(["jobs"] + root_args(tmp_path)) == 0
        assert capsys.readouterr().out == "no jobs\n"


class TestWatchCommand:
    def test_watch_replays_the_event_stream(self, tmp_path, capsys):
        root = root_args(tmp_path)
        main(["submit", "fig10_hundred_chips", *ARGS] + root)
        job_id = capsys.readouterr().out.strip()
        rc = main(["watch", job_id, "--no-follow"] + root)
        out = capsys.readouterr().out
        assert rc == 0
        assert "ExperimentStarted" in out
        assert "ExperimentEnded" in out
        assert out.rstrip().endswith(f"{job_id}: done")

    def test_watch_unknown_job_is_a_clean_error(self, tmp_path, capsys):
        rc = main(["watch", "job-12345"] + root_args(tmp_path))
        assert rc == 2
        assert "no such job" in capsys.readouterr().err
