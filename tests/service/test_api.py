"""The ExecutionService job API: lifecycle, dedupe, recovery, identity.

The experiment used throughout is ``fig10_hundred_chips`` at (or near)
the golden-digest scale pinned by
``tests/experiments/test_golden_outputs.py`` -- small enough for CI,
real enough that byte-identity claims mean something.
"""

import hashlib
import json
import os
import pathlib
import pickle

import pytest

from repro.engine.config import EngineConfig, SUBPROCESS_FLEET_BACKEND
from repro.engine.events import (
    BatchStarted,
    ChipCompleted,
    ExperimentEnded,
    ExperimentStarted,
)
from repro.errors import ConfigurationError, ExecutionError, JobCancelled
from repro.service import ExecutionService, JobHandle, JobSpec, JobStatus
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    read_status,
    write_status,
)

EXPERIMENT = "fig10_hundred_chips"
#: The golden scale from tests/experiments/test_golden_outputs.py.
GOLDEN_KWARGS = dict(chips=2, refs=800, seed=9)
GOLDEN_FIG10_DIGEST = (
    "c4062ea884fbf9f1d9c5eab4cdd3e5bcefb2bfead5ef447a32e504add7eb8033"
)
#: Smaller-than-golden scale for tests that run several jobs.
SMALL_KWARGS = dict(chips=2, refs=400, seed=9)


@pytest.fixture
def service(tmp_path):
    svc = ExecutionService(tmp_path / "svc")
    yield svc
    svc.close()


class TestJobSpec:
    def test_round_trips_through_json(self):
        spec = JobSpec(
            experiment=EXPERIMENT, chips=3, refs=500, seed=11,
            geometry="128:2", backend=SUBPROCESS_FLEET_BACKEND,
            fleet_size=2,
        )
        clone = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec

    def test_unknown_keys_ignored_on_load(self):
        spec = JobSpec.from_dict(
            {"experiment": EXPERIMENT, "future_field": 1}
        )
        assert spec.experiment == EXPERIMENT

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            JobSpec(experiment="")
        with pytest.raises(ConfigurationError):
            JobSpec(experiment=EXPERIMENT, chips=0)


class TestSubmitLifecycle:
    def test_submit_runs_to_done(self, service):
        handle = service.submit(EXPERIMENT, **SMALL_KWARGS)
        assert isinstance(handle, JobHandle)
        status = handle.wait(timeout=300)
        assert status.state == DONE
        assert status.experiment == EXPERIMENT
        assert status.cached is False

    def test_unknown_experiment_fails_fast(self, service):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            service.submit("not_an_experiment")

    def test_result_and_report(self, service):
        handle = service.submit(EXPERIMENT, **SMALL_KWARGS)
        result = handle.result(timeout=300)
        assert result is not None
        report = service.report(handle.job_id)
        assert report.startswith("Figure 10")

    def test_events_stream_typed_records(self, service):
        handle = service.submit(EXPERIMENT, **SMALL_KWARGS)
        handle.wait(timeout=300)
        events = list(handle.events())
        kinds = [type(e) for e in events]
        assert ExperimentStarted in kinds
        assert BatchStarted in kinds
        assert ChipCompleted in kinds
        assert kinds[-1] is ExperimentEnded
        # Follow-mode terminates once the job is terminal and yields the
        # same (complete) stream.
        followed = list(handle.events(follow=True))
        assert [type(e) for e in followed] == kinds

    def test_jobs_listing(self, service):
        handle = service.submit(EXPERIMENT, **SMALL_KWARGS)
        handle.wait(timeout=300)
        listed = service.jobs()
        assert [s.job_id for s in listed] == [handle.job_id]
        assert listed[0].state == DONE

    def test_status_of_unknown_job_is_an_error(self, service):
        with pytest.raises(ConfigurationError, match="no such job"):
            service.status("job-99999")

    def test_detached_submit_stays_queued(self, service):
        handle = service.submit(EXPERIMENT, start=False, **SMALL_KWARGS)
        assert handle.status().state == QUEUED
        started = service.run_pending()
        assert started == [handle.job_id]
        assert handle.wait(timeout=300).state == DONE


class TestFailureAndCancellation:
    def test_failing_job_reports_failed_with_detail(self, service):
        handle = service.submit(
            EXPERIMENT, technology="unobtainium", **SMALL_KWARGS
        )
        status = handle.wait(timeout=300)
        assert status.state == FAILED
        assert status.detail
        with pytest.raises(ExecutionError):
            handle.result()

    def test_cancel_before_start(self, service):
        handle = service.submit(EXPERIMENT, start=False, **SMALL_KWARGS)
        assert handle.cancel() is True
        service.run_pending()
        status = handle.wait(timeout=60)
        assert status.state == CANCELLED
        with pytest.raises(JobCancelled):
            handle.result()

    def test_cancel_mid_run(self, service):
        handle = service.submit(EXPERIMENT, **GOLDEN_KWARGS)
        # Cancel as soon as the first event lands (the job is mid-run).
        for _ in handle.events(follow=True):
            handle.cancel()
            break
        status = handle.wait(timeout=300)
        assert status.state == CANCELLED

    def test_cancel_after_done_returns_false(self, service):
        handle = service.submit(EXPERIMENT, **SMALL_KWARGS)
        handle.wait(timeout=300)
        assert handle.cancel() is False


class TestFleetWideDedupe:
    def test_second_identical_job_is_a_cache_hit(self, service):
        first = service.submit(EXPERIMENT, **SMALL_KWARGS)
        r1 = first.result(timeout=300)
        second = service.submit(EXPERIMENT, **SMALL_KWARGS)
        status = second.wait(timeout=60)
        assert status.state == DONE
        assert status.cached is True
        assert status.cache_hits > 0
        assert pickle.dumps(second.result()) == pickle.dumps(r1)

    def test_concurrent_identical_jobs_coalesce(self, service):
        handles = [
            service.submit(EXPERIMENT, **SMALL_KWARGS) for _ in range(2)
        ]
        statuses = [h.wait(timeout=300) for h in handles]
        assert all(s.state == DONE for s in statuses)
        # Exactly one job computed; the other was served from the shared
        # sharded cache after in-flight coalescing.
        assert sorted(s.cached for s in statuses) == [False, True]
        payloads = {
            pickle.dumps(h.result(timeout=60)) for h in handles
        }
        assert len(payloads) == 1
        assert service.cache.stats.hits > 0

    def test_different_seeds_do_not_collide(self, service):
        a = service.submit(EXPERIMENT, chips=2, refs=400, seed=9)
        b = service.submit(EXPERIMENT, chips=2, refs=400, seed=10)
        sa, sb = a.wait(timeout=300), b.wait(timeout=300)
        assert (sa.cached, sb.cached) == (False, False)
        assert pickle.dumps(a.result()) != pickle.dumps(b.result())


class TestCrashRecovery:
    def test_recover_restarts_jobs_with_dead_claims(self, service):
        handle = service.submit(EXPERIMENT, start=False, **SMALL_KWARGS)
        job_dir = service.jobs_dir / handle.job_id
        # Simulate a service process that died mid-job: RUNNING status
        # plus a claim held by a pid that no longer exists.
        write_status(job_dir, JobStatus(
            job_id=handle.job_id, state=RUNNING, experiment=EXPERIMENT,
        ))
        (job_dir / "claim").write_text("999999999")
        restarted = service.recover()
        assert restarted == [handle.job_id]
        status = handle.wait(timeout=300)
        assert status.state == DONE

    def test_recover_resumes_from_the_job_journal(self, service, tmp_path):
        handle = service.submit(EXPERIMENT, **GOLDEN_KWARGS)
        # Stop the first run mid-flight, leaving journalled chips behind.
        for _ in handle.events(follow=True):
            handle.cancel()
            break
        handle.wait(timeout=300)

        # "Restart" the interrupted job: clear the cancel marker, mark it
        # as abandoned by a dead process, and recover.  The re-run
        # restores journalled chips with resume=True.
        job_dir = service.jobs_dir / handle.job_id
        if (job_dir / "cancel").exists():
            (job_dir / "cancel").unlink()
        write_status(job_dir, JobStatus(
            job_id=handle.job_id, state=RUNNING, experiment=EXPERIMENT,
        ))
        (job_dir / "claim").write_text("999999999")
        restarted = service.recover()
        assert restarted == [handle.job_id]
        assert handle.wait(timeout=300).state == DONE

        # The recovered result is byte-identical to an uninterrupted run
        # of the same spec in an unrelated service root (separate cache,
        # so no dedupe shortcut hides a resume bug).
        fresh = ExecutionService(tmp_path / "fresh-svc")
        uninterrupted = fresh.submit(
            EXPERIMENT, **GOLDEN_KWARGS
        ).result(timeout=300)
        fresh.close()
        assert (
            pickle.dumps(handle.result()) == pickle.dumps(uninterrupted)
        )

    def test_recover_skips_live_and_terminal_jobs(self, service):
        done = service.submit(EXPERIMENT, **SMALL_KWARGS)
        done.wait(timeout=300)
        live = service.submit(EXPERIMENT, start=False, **SMALL_KWARGS)
        job_dir = service.jobs_dir / live.job_id
        write_status(job_dir, JobStatus(
            job_id=live.job_id, state=RUNNING, experiment=EXPERIMENT,
        ))
        # Pid 1 is always alive and never this process: a live foreign
        # claim that recover() must respect.
        (job_dir / "claim").write_text("1")
        assert service.recover() == []
        (job_dir / "claim").unlink()


class TestBackendIdentity:
    def test_local_backend_matches_golden_digest(self, service):
        handle = service.submit(EXPERIMENT, **GOLDEN_KWARGS)
        handle.wait(timeout=600)
        report = service.report(handle.job_id)
        digest = hashlib.sha256(
            report[:-1].encode()  # report.txt appends one newline
        ).hexdigest()
        assert digest == GOLDEN_FIG10_DIGEST

    def test_subprocess_fleet_backend_is_byte_identical(self, service):
        local = service.submit(EXPERIMENT, **SMALL_KWARGS)
        local_result = local.result(timeout=300)
        fleet_svc = ExecutionService(
            service.root.parent / "fleet-svc"
        )
        fleet = fleet_svc.submit(
            EXPERIMENT,
            backend=SUBPROCESS_FLEET_BACKEND,
            workers=2,
            fleet_size=2,
            **SMALL_KWARGS,
        )
        status = fleet.wait(timeout=600)
        assert status.state == DONE, status.detail
        fleet_result = fleet.result()
        fleet_svc.close()
        assert (
            pickle.dumps(fleet_result) == pickle.dumps(local_result)
        )


class TestGeometrySpecs:
    def test_geometry_spec_round_trips(self, service):
        handle = service.submit(
            EXPERIMENT, geometry="128:2", **SMALL_KWARGS
        )
        status = handle.wait(timeout=300)
        assert status.state == DONE, status.detail

    def test_bad_geometry_spec_is_a_configuration_error(self, service):
        handle = service.submit(
            EXPERIMENT, geometry="not-a-spec", **SMALL_KWARGS
        )
        status = handle.wait(timeout=60)
        assert status.state == FAILED
        assert "geometry" in status.detail


class TestNoDeprecationWarnings:
    def test_import_and_full_run_emit_no_deprecation_warnings(
        self, tmp_path
    ):
        """Satellite of the legacy-shim removals: the whole stack --
        facade import, service submission, full fig10 run -- is warning
        free now that the ``on_*`` observer shims and the L2 geometry
        scalars are gone."""
        import subprocess
        import sys

        script = (
            "import warnings\n"
            "warnings.simplefilter('error', DeprecationWarning)\n"
            "import repro\n"
            "from repro.service import ExecutionService\n"
            "import pathlib\n"
            f"svc = ExecutionService(pathlib.Path({str(tmp_path)!r}))\n"
            "h = svc.submit('fig10_hundred_chips', chips=2, refs=400,"
            " seed=9)\n"
            "assert h.wait(timeout=300).state == 'done'\n"
            "svc.close()\n"
        )
        repo = pathlib.Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(repo / "src"), env.get("PYTHONPATH")])
        )
        proc = subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning",
             "-c", script],
            capture_output=True, text=True, env=env, cwd=repo,
        )
        assert proc.returncode == 0, proc.stderr
