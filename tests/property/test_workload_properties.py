"""Property-based tests of the workload generator and BIST."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.technology import NODE_32NM
from repro.array import CacheGeometry, RetentionBIST
from repro.array.chip import DRAM3T1DChipSample
from repro.workloads import SyntheticWorkload, get_profile, benchmark_names
from repro.workloads.reuse import reference_distance_cdf

profiles = st.sampled_from(benchmark_names())


class TestGeneratorProperties:
    @settings(deadline=None, max_examples=20,
              suppress_health_check=[HealthCheck.too_slow])
    @given(name=profiles, seed=st.integers(0, 2 ** 16),
           n=st.integers(1, 400))
    def test_trace_invariants(self, name, seed, n):
        trace = SyntheticWorkload(get_profile(name), seed=seed).memory_trace(n)
        assert len(trace) == n
        assert np.all(np.diff(trace.cycles) >= 0)
        assert np.all(trace.line_addresses >= 0)

    @settings(deadline=None, max_examples=10,
              suppress_health_check=[HealthCheck.too_slow])
    @given(name=profiles, seed=st.integers(0, 2 ** 16))
    def test_determinism(self, name, seed):
        a = SyntheticWorkload(get_profile(name), seed=seed).memory_trace(200)
        b = SyntheticWorkload(get_profile(name), seed=seed).memory_trace(200)
        assert np.array_equal(a.cycles, b.cycles)
        assert np.array_equal(a.line_addresses, b.line_addresses)
        assert np.array_equal(a.is_write, b.is_write)

    @settings(deadline=None, max_examples=10,
              suppress_health_check=[HealthCheck.too_slow])
    @given(name=profiles, seed=st.integers(0, 2 ** 10),
           warmup=st.integers(0, 128))
    def test_warmup_isolation(self, name, seed, warmup):
        """Warmup lines never collide with the measured stream's lines."""
        trace = SyntheticWorkload(get_profile(name), seed=seed).memory_trace(
            150, warmup_lines=warmup
        )
        warm = set(trace.line_addresses[:warmup].tolist())
        main = set(trace.line_addresses[warmup:].tolist())
        assert not warm & main

    @settings(deadline=None, max_examples=10,
              suppress_health_check=[HealthCheck.too_slow])
    @given(name=profiles, seed=st.integers(0, 2 ** 10))
    def test_measured_cdf_is_monotone(self, name, seed):
        trace = SyntheticWorkload(get_profile(name), seed=seed).memory_trace(
            500
        )
        stats = reference_distance_cdf(trace)
        grid = [500, 2000, 8000, 32000]
        series = stats.cdf_series(grid)
        assert np.all(np.diff(series) >= 0)


class TestBISTProperties:
    @settings(deadline=None, max_examples=20,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(0, 2 ** 16),
        scale_us=st.floats(min_value=0.01, max_value=10.0),
        guard=st.floats(min_value=0.5, max_value=1.0),
        bits=st.integers(min_value=1, max_value=5),
    )
    def test_bist_conservative_for_any_chip(self, seed, scale_us, guard, bits):
        geometry = CacheGeometry()
        rng = np.random.default_rng(seed)
        retention_us = rng.exponential(scale_us, size=geometry.n_lines)
        chip = DRAM3T1DChipSample(
            node=NODE_32NM,
            geometry=geometry,
            chip_id=0,
            retention_by_line=retention_us * 1e-6,
            leakage_power=1.0,
            golden_leakage_power=1.0,
        )
        result = RetentionBIST(counter_bits=bits, guard_band=guard).test_chip(
            chip
        )
        true_cycles = chip.retention_by_line * NODE_32NM.frequency
        assert np.all(result.measured_retention_cycles <= true_cycles + 1e-6)
        assert np.all(result.counter_values >= 0)
        assert np.all(
            result.counter_values % result.counter.step_cycles == 0
        )
