"""Property-based tests of the device/retention/counter models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.technology import NODE_32NM
from repro.cells import DRAM3T1DCell, RetentionModel, SRAM6TCell
from repro.cache import LineCounterConfig, quantize_retention
from repro.variation import harmonic_mean

small_voltages = st.floats(
    min_value=-0.15, max_value=0.15, allow_nan=False, allow_infinity=False
)
retention_values = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=1, max_size=64,
)


class TestRetentionModelProperties:
    @settings(deadline=None)
    @given(t1=small_voltages, t2=small_voltages, eps=st.floats(-0.3, 0.3))
    def test_retention_never_negative(self, t1, t2, eps):
        model = RetentionModel.for_node(NODE_32NM)
        assert float(model.retention_time(t1, t2, 0.0, eps)) >= 0.0

    @settings(deadline=None)
    @given(t2_a=small_voltages, t2_b=small_voltages)
    def test_monotone_in_read_threshold(self, t2_a, t2_b):
        model = RetentionModel.for_node(NODE_32NM)
        low, high = sorted([t2_a, t2_b])
        assert float(model.retention_time(delta_vth_t2=high)) <= float(
            model.retention_time(delta_vth_t2=low)
        )

    @settings(deadline=None)
    @given(eps_a=st.floats(-0.3, 0.3), eps_b=st.floats(-0.3, 0.3))
    def test_monotone_in_boost(self, eps_a, eps_b):
        model = RetentionModel.for_node(NODE_32NM)
        low, high = sorted([eps_a, eps_b])
        assert float(model.retention_time(boost_eps=high)) >= float(
            model.retention_time(boost_eps=low)
        )

    @settings(deadline=None)
    @given(t1=small_voltages, t2=small_voltages)
    def test_dead_flag_consistent(self, t1, t2):
        model = RetentionModel.for_node(NODE_32NM)
        dead = bool(model.is_dead(t1, t2))
        retention = float(model.retention_time(t1, t2))
        assert dead == (retention <= 0.0)


class TestCellProperties:
    @settings(deadline=None)
    @given(delta=small_voltages)
    def test_6t_access_slower_with_higher_vth(self, delta):
        cell = SRAM6TCell(NODE_32NM)
        if delta > 0:
            assert cell.access_time(delta_vth=delta) >= cell.access_time()
        else:
            assert cell.access_time(delta_vth=delta) <= cell.access_time()

    @settings(deadline=None)
    @given(delta=small_voltages)
    def test_leakage_positive(self, delta):
        cell = DRAM3T1DCell(NODE_32NM)
        assert float(cell.leakage_power(delta)) > 0.0

    @settings(deadline=None)
    @given(sigma=st.floats(min_value=0.0, max_value=0.2))
    def test_flip_probability_in_unit_interval(self, sigma):
        probability = SRAM6TCell(NODE_32NM).flip_probability(sigma)
        assert 0.0 <= probability <= 0.5

    @settings(deadline=None)
    @given(
        sigma=st.floats(min_value=1e-4, max_value=0.2),
        bits_a=st.integers(min_value=1, max_value=512),
        bits_b=st.integers(min_value=1, max_value=512),
    )
    def test_line_failure_monotone_in_length(self, sigma, bits_a, bits_b):
        cell = SRAM6TCell(NODE_32NM)
        short, long_ = sorted([bits_a, bits_b])
        assert cell.line_failure_probability(
            sigma, long_
        ) >= cell.line_failure_probability(sigma, short)


class TestCounterProperties:
    @settings(deadline=None)
    @given(
        values=retention_values,
        bits=st.integers(min_value=1, max_value=6),
        step=st.integers(min_value=1, max_value=5000),
    )
    def test_quantization_invariants(self, values, bits, step):
        counter = LineCounterConfig(bits=bits, step_cycles=step)
        quantized = quantize_retention(np.array(values), counter)
        # Never longer than reality, always a counter multiple, in range.
        assert np.all(quantized <= np.array(values))
        assert np.all(quantized % step == 0)
        assert np.all(quantized <= counter.max_cycles)

    @settings(deadline=None)
    @given(maximum=st.floats(min_value=1.0, max_value=1e7),
           bits=st.integers(min_value=1, max_value=6))
    def test_for_chip_always_spans_maximum(self, maximum, bits):
        counter = LineCounterConfig.for_chip(maximum, bits=bits)
        assert counter.max_cycles >= maximum


class TestStatisticsProperties:
    @settings(deadline=None)
    @given(values=st.lists(
        st.floats(min_value=1e-3, max_value=1e3), min_size=1, max_size=32
    ))
    def test_harmonic_le_arithmetic(self, values):
        assert harmonic_mean(values) <= np.mean(values) + 1e-9

    @settings(deadline=None)
    @given(value=st.floats(min_value=1e-3, max_value=1e3),
           n=st.integers(min_value=1, max_value=16))
    def test_harmonic_of_constant(self, value, n):
        assert harmonic_mean([value] * n) == np.float64(value).item() or (
            abs(harmonic_mean([value] * n) - value) < 1e-9 * value
        )
