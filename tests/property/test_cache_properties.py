"""Property-based tests of the cache simulator.

The ideal cache is checked access-by-access against an executable
reference model (a dict-based LRU cache); retention caches are checked
against global invariants that must hold for *any* trace and *any*
retention map.
"""

from collections import OrderedDict

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache import AccessOutcome, RetentionAwareCache
from repro.cache.refresh import FullRefresh, NoRefresh, PartialRefresh

N_SETS = 8
N_WAYS = 4

# One access: (gap cycles, line in a small footprint, is_write).
accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3000),
        st.integers(min_value=0, max_value=47),
        st.booleans(),
    ),
    min_size=1,
    max_size=120,
)

retention_grids = st.lists(
    st.sampled_from([0, 500, 2_000, 10_000, 50_000]),
    min_size=N_SETS * N_WAYS,
    max_size=N_SETS * N_WAYS,
)


class ReferenceLRUCache:
    """Executable specification of an ideal set-associative LRU cache."""

    def __init__(self, n_sets, n_ways):
        self.n_sets = n_sets
        self.n_ways = n_ways
        self.sets = [OrderedDict() for _ in range(n_sets)]

    def access(self, line):
        index = line % self.n_sets
        tag = line // self.n_sets
        entries = self.sets[index]
        if tag in entries:
            entries.move_to_end(tag)
            return True
        if len(entries) >= self.n_ways:
            entries.popitem(last=False)
        entries[tag] = True
        return False


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(accesses=accesses)
def test_ideal_cache_matches_reference_lru(tiny_config, accesses):
    cache = RetentionAwareCache(tiny_config)
    reference = ReferenceLRUCache(N_SETS, N_WAYS)
    cycle = 0
    for gap, line, is_write in accesses:
        cycle += gap
        outcome = cache.access(cycle, line, is_write)
        expected_hit = reference.access(line)
        assert (outcome is AccessOutcome.HIT) == expected_hit


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(accesses=accesses, retention=retention_grids,
       replacement=st.sampled_from(["LRU", "DSP", "RSP-FIFO", "RSP-LRU"]))
def test_stats_conservation(tiny_config, accesses, retention, replacement):
    grid = np.array(retention).reshape(N_SETS, N_WAYS)
    cache = RetentionAwareCache(
        tiny_config, grid, replacement=replacement, quantize=False
    )
    cycle = 0
    for gap, line, is_write in accesses:
        cycle += gap
        cache.access(cycle, line, is_write)
    stats = cache.finalize(cycle)
    assert stats.accesses == len(accesses)
    assert stats.hits + stats.misses == stats.accesses
    assert stats.loads + stats.stores == stats.accesses
    assert stats.l2_accesses >= stats.misses  # every miss goes to L2
    assert stats.expiry_writebacks <= stats.writebacks
    assert stats.refresh_blocked_cycles == (
        stats.line_refreshes * tiny_config.geometry.refresh_cycles_per_line
    )
    assert stats.move_blocked_cycles == (
        stats.line_moves * tiny_config.geometry.refresh_cycles_per_line
    )


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(accesses=accesses, retention=retention_grids,
       replacement=st.sampled_from(["LRU", "DSP", "RSP-FIFO", "RSP-LRU"]))
def test_set_state_structural_invariants(
    tiny_config, accesses, retention, replacement
):
    grid = np.array(retention).reshape(N_SETS, N_WAYS)
    cache = RetentionAwareCache(
        tiny_config, grid, replacement=replacement, quantize=False
    )
    cycle = 0
    for gap, line, is_write in accesses:
        cycle += gap
        cache.access(cycle, line, is_write)
        for set_state in cache.sets:
            valid_tags = [
                set_state.tags[w]
                for w in range(set_state.n_ways)
                if set_state.valid[w]
            ]
            # No duplicate tags within a set, ever.
            assert len(valid_tags) == len(set(valid_tags))


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(accesses=accesses, retention=retention_grids)
def test_dsp_never_stores_in_dead_ways(tiny_config, accesses, retention):
    grid = np.array(retention).reshape(N_SETS, N_WAYS)
    cache = RetentionAwareCache(
        tiny_config, grid, replacement="DSP", quantize=False
    )
    cycle = 0
    for gap, line, is_write in accesses:
        cycle += gap
        cache.access(cycle, line, is_write)
        for s, set_state in enumerate(cache.sets):
            for way in range(set_state.n_ways):
                if grid[s, way] == 0:
                    assert not set_state.valid[way]


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(accesses=accesses, retention=retention_grids)
def test_bypass_only_when_all_ways_dead(tiny_config, accesses, retention):
    grid = np.array(retention).reshape(N_SETS, N_WAYS)
    cache = RetentionAwareCache(
        tiny_config, grid, replacement="DSP", quantize=False
    )
    cycle = 0
    for gap, line, is_write in accesses:
        cycle += gap
        outcome = cache.access(cycle, line, is_write)
        if outcome is AccessOutcome.MISS_DEAD_BYPASS:
            assert np.all(grid[line % N_SETS] == 0)


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(accesses=accesses, retention=retention_grids)
def test_full_refresh_eliminates_expiry_misses(
    tiny_config, accesses, retention
):
    # With every live line refreshed forever and a retention-aware
    # placement, retention can only cause dead-way capacity loss -- never
    # an expired access.
    grid = np.array(retention).reshape(N_SETS, N_WAYS)
    cache = RetentionAwareCache(
        tiny_config, grid, replacement="DSP", refresh=FullRefresh(),
        quantize=False,
    )
    cycle = 0
    for gap, line, is_write in accesses:
        cycle += gap
        cache.access(cycle, line, is_write)
    assert cache.stats.misses_expired == 0


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(accesses=accesses, retention=retention_grids)
def test_partial_refresh_never_loses_data_before_threshold(
    tiny_config, accesses, retention
):
    """The paper's guarantee: every live line's data survives at least the
    threshold after its fill."""
    threshold = tiny_config.partial_refresh_threshold_cycles
    grid = np.array(retention).reshape(N_SETS, N_WAYS)
    cache = RetentionAwareCache(
        tiny_config, grid, replacement="DSP",
        refresh=PartialRefresh(threshold_cycles=threshold), quantize=False,
    )
    fill_times = {}
    cycle = 0
    for gap, line, is_write in accesses:
        cycle += gap
        outcome = cache.access(cycle, line, is_write)
        if outcome is AccessOutcome.MISS_EXPIRED:
            # The expired block must have been older than the threshold.
            assert cycle - fill_times.get(line, cycle) >= threshold
        if outcome is not AccessOutcome.HIT:
            fill_times[line] = cycle


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(accesses=accesses)
def test_no_refresh_hits_only_within_retention(tiny_config, accesses):
    grid = np.full((N_SETS, N_WAYS), 5_000)
    cache = RetentionAwareCache(
        tiny_config, grid, replacement="DSP", refresh=NoRefresh(),
        quantize=False,
    )
    last_fill = {}
    cycle = 0
    for gap, line, is_write in accesses:
        cycle += gap
        outcome = cache.access(cycle, line, is_write)
        if outcome is AccessOutcome.HIT:
            assert cycle - last_fill[line] < 5_000
        else:
            last_fill[line] = cycle


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(accesses=accesses,
       retention=st.sampled_from([2_000, 10_000, 50_000]))
def test_online_refresh_with_zero_margin_matches_lazy(
    tiny_config, accesses, retention
):
    """With a zero token margin the scheduled engine degenerates to the
    lazy idealisation: same hits, same misses, same refresh counts."""
    from repro.cache.refresh import FullRefresh
    from repro.cache.token import TokenRefreshEngine

    grid = np.full((N_SETS, N_WAYS), retention)
    lazy = RetentionAwareCache(
        tiny_config, grid, replacement="DSP", refresh=FullRefresh(),
        quantize=False,
    )
    online = RetentionAwareCache(
        tiny_config, grid, replacement="DSP", refresh=FullRefresh(),
        quantize=False, online_refresh=True,
    )
    online.refresh_engine = TokenRefreshEngine(
        tiny_config.geometry, margin_cycles=0
    )
    cycle = 0
    for gap, line, is_write in accesses:
        cycle += gap
        lazy_outcome = lazy.access(cycle, line, is_write)
        online_outcome = online.access(cycle, line, is_write)
        assert lazy_outcome == online_outcome
    lazy_stats = lazy.finalize(cycle)
    online_stats = online.finalize(cycle)
    assert online_stats.hits == lazy_stats.hits
    assert online_stats.misses == lazy_stats.misses
