"""Property-based tests of the token engine and the closed-form model."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.technology import NODE_32NM
from repro.array import CacheGeometry
from repro.cache.token import TokenRefreshEngine
from repro.core import Cache3T1DArchitecture, get_scheme
from repro.core.analytic import evaluate_analytically
from repro.experiments.fig12_sensitivity import synthetic_chip
from repro.workloads import get_profile

schedule_entries = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=255),   # set index
        st.integers(min_value=0, max_value=3),     # way
        st.integers(min_value=0, max_value=5000),  # fill cycle
        st.integers(min_value=1, max_value=50000), # retention
    ),
    min_size=1,
    max_size=40,
    unique_by=lambda e: (e[0], e[1]),
)


class TestTokenEngineProperties:
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(entries=schedule_entries,
           margin=st.integers(min_value=0, max_value=4000))
    def test_service_invariants(self, entries, margin):
        geometry = CacheGeometry()
        engine = TokenRefreshEngine(geometry, margin_cycles=margin)
        due_times = {}
        for set_index, way, fill, retention in entries:
            if engine.schedule(set_index, way, 4, fill, retention):
                due_times[(set_index, way)] = fill + retention - margin
        serviced = engine.due_refreshes(10 ** 9)
        per_line = geometry.refresh_cycles_per_line
        # Every armed request is serviced exactly once.
        assert len(serviced) == len(due_times)
        by_pair = {}
        for service, set_index, way in serviced:
            # Never serviced before its due time.
            assert service >= due_times[(set_index, way)]
            pair = engine.line_pair(set_index, way, 4)
            by_pair.setdefault(pair, []).append(service)
        # Per-pair services never overlap (the token is exclusive).
        for services in by_pair.values():
            services.sort()
            for earlier, later in zip(services, services[1:]):
                assert later >= earlier + per_line
        # Bookkeeping matches.
        assert engine.refreshes_done == len(serviced)
        assert engine.busy_cycles == per_line * len(serviced)

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(entries=schedule_entries)
    def test_cancel_prevents_service(self, entries):
        geometry = CacheGeometry()
        engine = TokenRefreshEngine(geometry, margin_cycles=0)
        armed = []
        for set_index, way, fill, retention in entries:
            if engine.schedule(set_index, way, 4, fill, retention):
                armed.append((set_index, way))
        for set_index, way in armed:
            engine.cancel(set_index, way)
        assert engine.due_refreshes(10 ** 9) == []


class TestAnalyticProperties:
    @settings(deadline=None, max_examples=15,
              suppress_health_check=[HealthCheck.too_slow])
    @given(mu=st.integers(min_value=2000, max_value=30000),
           ratio=st.floats(min_value=0.05, max_value=0.35),
           seed=st.integers(0, 500))
    def test_performance_in_unit_interval(self, mu, ratio, seed):
        chip = synthetic_chip(NODE_32NM, mu, ratio, seed=seed)
        result = evaluate_analytically(
            Cache3T1DArchitecture(chip, get_scheme("no-refresh/LRU")),
            get_profile("gcc"),
        )
        assert 0.0 < result.normalized_performance <= 1.0
        assert 0.0 <= result.expiry_miss_fraction <= 1.0
        assert 0.0 <= result.dead_way_fraction <= 1.0

    @settings(deadline=None, max_examples=10,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ratio=st.floats(min_value=0.05, max_value=0.35),
           seed=st.integers(0, 200))
    def test_longer_mean_retention_never_hurts(self, ratio, seed):
        profile = get_profile("gcc")
        perf = []
        for mu in (3000, 12000, 30000):
            chip = synthetic_chip(NODE_32NM, mu, ratio, seed=seed)
            perf.append(
                evaluate_analytically(
                    Cache3T1DArchitecture(chip, get_scheme("no-refresh/LRU")),
                    profile,
                ).normalized_performance
            )
        assert perf[0] <= perf[1] + 1e-6
        assert perf[1] <= perf[2] + 1e-6

    @settings(deadline=None, max_examples=10,
              suppress_health_check=[HealthCheck.too_slow])
    @given(mu=st.integers(min_value=2000, max_value=30000),
           ratio=st.floats(min_value=0.05, max_value=0.35),
           seed=st.integers(0, 200))
    def test_full_refresh_dominates_no_refresh(self, mu, ratio, seed):
        profile = get_profile("gcc")
        chip = synthetic_chip(NODE_32NM, mu, ratio, seed=seed)
        none = evaluate_analytically(
            Cache3T1DArchitecture(chip, get_scheme("no-refresh/DSP")), profile
        )
        full = evaluate_analytically(
            Cache3T1DArchitecture(chip, get_scheme("full-refresh/DSP")),
            profile,
        )
        # The closed form charges no port cost, so keeping everything
        # alive can only help.
        assert full.normalized_performance >= none.normalized_performance - 1e-9
