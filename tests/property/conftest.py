"""Shared fixtures for property-based tests."""

import pytest

from repro.array import CacheGeometry
from repro.cache import CacheConfig


@pytest.fixture(scope="session")
def tiny_geometry():
    """A 2KB, 8-set, 4-way cache: small enough for hypothesis, structured
    like the paper's."""
    return CacheGeometry(
        size_bytes=2048,
        line_bits=512,
        ways=4,
        n_subarrays=8,
        subarray_rows=64,
        subarray_cols=32,
        sense_amps_per_pair=64,
    )


@pytest.fixture(scope="session")
def tiny_config(tiny_geometry):
    return CacheConfig(geometry=tiny_geometry)
