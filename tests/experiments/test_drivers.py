"""Experiment drivers: every figure runs at tiny scale and reports sanely."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import ExperimentContext, reporting
from repro.experiments import (
    fig01_reuse,
    fig04_retention_curve,
    fig06_typical,
    fig07_leakage,
    fig08_line_retention,
    fig09_schemes,
    fig10_hundred_chips,
    fig11_associativity,
    fig12_sensitivity,
    table3,
    techcompare,
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(n_chips=8, n_references=2500, seed=123)


class TestRunnerAndReporting:
    def test_scenarios(self, context):
        assert context.scenario("typical").name == "typical"
        assert context.scenario("severe").name == "severe"
        with pytest.raises(ConfigurationError):
            context.scenario("apocalyptic")

    def test_chip_batches_cached(self, context):
        assert context.chips_3t1d("typical") is context.chips_3t1d("typical")
        assert len(context.chips_3t1d("typical")) == 8

    def test_evaluator_cached_per_ways(self, context):
        assert context.evaluator(4) is context.evaluator(4)
        assert context.evaluator(2) is not context.evaluator(4)

    def test_format_table(self):
        text = reporting.format_table(
            ["a", "b"], [[1, 2.5], ["x", "y"]], title="T"
        )
        assert "T" in text and "2.5" in text

    def test_format_table_width_mismatch(self):
        with pytest.raises(ConfigurationError):
            reporting.format_table(["a"], [[1, 2]])

    def test_format_histogram(self):
        text = reporting.format_histogram(["lo", "hi"], [0.25, 0.75])
        assert "75.0%" in text

    def test_format_histogram_mismatch(self):
        with pytest.raises(ConfigurationError):
            reporting.format_histogram(["lo"], [0.5, 0.5])


class TestFig01(object):
    def test_runs_and_reports(self, context):
        result = fig01_reuse.run(context)
        assert set(result.measured) == set(result.modeled)
        average = result.average_measured
        assert np.all(np.diff(average) >= 0)  # CDFs rise
        assert 0.8 < average[list(result.grid).index(6000)] < 1.0
        assert "Average" in fig01_reuse.report(result)


class TestFig04:
    def test_curves_and_retention(self):
        result = fig04_retention_curve.run()
        assert result.retention_us["nominal"] == pytest.approx(5.8, rel=0.01)
        assert result.retention_us["weak"] < result.retention_us["nominal"]
        assert (
            result.retention_us["strong"] >= result.retention_us["nominal"]
        )
        assert "retention" in fig04_retention_curve.report(result)


class TestFig06:
    def test_panels(self, context):
        result = fig06_typical.run(context)
        assert result.frequency_histogram_1x.sum() == pytest.approx(1.0)
        assert result.frequency_histogram_2x.sum() == pytest.approx(1.0)
        assert len(result.points) + result.discard_rate * 8 == pytest.approx(
            8, abs=0.51
        )
        # 2X chips bin faster than 1X chips.
        centers = np.arange(0.775, 1.076, 0.025)
        mean_1x = np.dot(centers, result.frequency_histogram_1x)
        mean_2x = np.dot(centers, result.frequency_histogram_2x)
        assert mean_2x > mean_1x
        assert "Figure 6b" in fig06_typical.report(result)

    def test_power_declines_with_retention(self, context):
        result = fig06_typical.run(context)
        if len(result.points) >= 4:
            first, last = result.points[0], result.points[-1]
            assert first.total_dynamic_power >= last.total_dynamic_power


class TestFig07:
    def test_distributions(self, context):
        result = fig07_leakage.run(context)
        assert result.histogram_6t.sum() == pytest.approx(1.0)
        assert result.histogram_3t1d.sum() == pytest.approx(1.0)
        assert result.fraction_3t1d_above_golden < 0.5
        assert np.median(result.samples_3t1d) < np.median(result.samples_6t)
        assert "Figure 7a" in fig07_leakage.report(result)


class TestFig08:
    def test_chips_ordered(self, context):
        result = fig08_line_retention.run(context)
        assert set(result.histograms) == {"good", "median", "bad"}
        assert (
            result.dead_fractions["bad"] >= result.dead_fractions["good"]
        )
        assert 0.0 <= result.discard_rate <= 1.0
        assert "dead lines" in fig08_line_retention.report(result)


class TestFig09:
    def test_matrix(self, context):
        result = fig09_schemes.run(context)
        assert len(result.performance) == 8
        for by_chip in result.performance.values():
            assert set(by_chip) == {"good", "median", "bad"}
        # The retention-aware schemes beat plain LRU on the bad chip.
        assert (
            result.performance["RSP-FIFO"]["bad"]
            > result.performance["no-refresh/LRU"]["bad"]
        )
        assert "Figure 9" in fig09_schemes.report(result)


class TestFig10:
    def test_series(self, context):
        result = fig10_hundred_chips.run(context)
        first = next(iter(result.performance))
        series = result.performance[first]
        assert len(series) == 8
        assert np.all(np.diff(series) <= 1e-12)  # sorted descending
        assert result.worst_performance("RSP-FIFO") > result.worst_performance(
            "no-refresh/LRU"
        ) - 1e-9
        assert "Figure 10" in fig10_hundred_chips.report(result)


class TestFig11:
    def test_sweep(self, context):
        result = fig11_associativity.run(
            context, ways_sweep=(1, 4)
        )
        assert result.spread_at("bad", 1) <= result.spread_at("bad", 4) + 0.02
        assert "Figure 11" in fig11_associativity.report(result)


class TestFig12:
    def test_surface_shapes(self, context):
        result = fig12_sensitivity.run(
            context,
            mu_cycles=(2000, 20000),
            sigma_ratios=(0.05, 0.35),
            benchmarks=("gcc",),
            include_design_points=False,
        )
        for surface in result.surfaces.values():
            assert surface.shape == (2, 2)
            assert np.all(surface > 0.3)
        # no-refresh collapses in the bad corner relative to the good one.
        no_refresh = result.surfaces["no-refresh/LRU"]
        assert no_refresh[1, 0] > no_refresh[0, 1]
        assert "Figure 12" in fig12_sensitivity.report(result)

    def test_synthetic_chip_statistics(self, context):
        chip = fig12_sensitivity.synthetic_chip(
            context.node, mu_cycles=10000, sigma_ratio=0.2, seed=1
        )
        cycles = chip.retention_by_line * context.node.frequency
        assert np.mean(cycles) == pytest.approx(10000, rel=0.05)
        assert np.std(cycles) == pytest.approx(2000, rel=0.15)

    def test_design_points_ordered(self):
        points = fig12_sensitivity.locate_design_points(n_chips=3, seed=2)
        by_label = {p.label.split(":")[0]: p for p in points}
        # Scaling and severity shrink mu (points 1 -> 3 -> 4).
        assert by_label["1"].mu_cycles > by_label["3"].mu_cycles
        assert by_label["4"].sigma_ratio > by_label["3"].sigma_ratio


class TestTable3:
    def test_rows(self):
        context = ExperimentContext(n_chips=6, n_references=2500, seed=5)
        result = table3.run(context)
        assert len(result.rows) == 9
        ideal = result.row("32nm", "ideal 6T")
        assert ideal.access_time_ps == pytest.approx(208)
        sram = result.row("32nm", "1X 6T median")
        assert sram.access_time_ps > ideal.access_time_ps
        assert sram.bips < ideal.bips
        dram = result.row("32nm", "3T1D median")
        assert dram.retention_ns and dram.retention_ns > 400
        assert dram.bips > sram.bips  # the paper's headline
        assert dram.leakage_power_mw < ideal.leakage_power_mw
        assert "Table 3" in table3.report(result)


class TestTechCompare:
    def test_sweeps_all_backends_on_batched_kernels(self):
        context = ExperimentContext(n_chips=2, n_references=1200, seed=9)
        result = techcompare.run(context)
        assert len(result.rows) == (
            len(techcompare.TECHNOLOGIES)
            * len(techcompare.SEVERITIES)
            * len(techcompare.SCHEMES)
        )
        assert {r.technology for r in result.rows} == set(
            techcompare.TECHNOLOGIES
        )
        # Every cell of every backend must replay on the batched
        # flattened/timeline kernels -- no event-path fallbacks.
        assert result.fast_path_coverage == 1.0
        for row in result.rows:
            assert row.chips >= 1
            assert row.mean_performance > 0
            assert row.energy_delay > 0
        # The latency-variation model only exists in vardram.
        vardram = result.rows_for("vardram")
        assert all(r.mean_latency_factor > 1.0 for r in vardram)
        assert all(
            r.mean_latency_factor == 1.0
            for r in result.rows_for("3t1d") + result.rows_for("sttram")
        )
        text = techcompare.report(result)
        assert "fast_path_coverage: 1.000" in text
        assert "sttram" in text and "vardram" in text
        exports = techcompare.csv_rows(result)
        assert exports[0].filename == "techcompare.csv"
        assert len(exports[0].rows) == len(result.rows)


class TestCsvExport:
    def test_write_csv_round_trip(self, tmp_path):
        import csv

        path = tmp_path / "out.csv"
        reporting.write_csv(path, ["a", "b"], [[1, 2], ["x", "y"]])
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["x", "y"]]

    def test_write_csv_validates_width(self, tmp_path):
        with pytest.raises(ConfigurationError):
            reporting.write_csv(tmp_path / "bad.csv", ["a"], [[1, 2]])
