"""The run-everything driver."""

from repro.experiments.runner import ExperimentContext
from repro.experiments.run_all import EXPERIMENTS, run_all


def test_run_all_writes_reports(tmp_path):
    context = ExperimentContext(n_chips=4, n_references=1500, seed=3)
    messages = []
    summary = run_all(context, tmp_path, progress=messages.append)

    assert summary.exists()
    combined = summary.read_text()
    for name, _ in EXPERIMENTS:
        assert (tmp_path / f"{name}.txt").exists()
        assert name in combined or name == "table3"
    assert len(messages) == len(EXPERIMENTS)
    assert "Figure 9" in combined
    assert "Table 3" in combined
    # Machine-readable exports for the plot-shaped experiments.
    for csv_name in (
        "fig01_reuse.csv",
        "fig10_hundred_chips.csv",
        "fig12_sensitivity.csv",
    ):
        assert (tmp_path / csv_name).exists()


def test_cli_main_small_scale(tmp_path):
    from repro.experiments import run_all as run_all_module

    run_all_module.main(
        [
            "--chips", "3",
            "--refs", "1000",
            "--seed", "5",
            "--out", str(tmp_path / "reports"),
        ]
    )
    assert (tmp_path / "reports" / "summary.txt").exists()
