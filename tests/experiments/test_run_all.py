"""The run-everything driver (registry-driven, cached, observable)."""

import pytest

from repro.engine.cache import ResultCache
from repro.engine.observer import JSONMetricsObserver
from repro.engine.registry import all_experiments, experiment_names
from repro.experiments.runner import ExperimentContext
from repro.experiments.run_all import run_all


def test_run_all_writes_reports(tmp_path):
    context = ExperimentContext(n_chips=4, n_references=1500, seed=3)
    messages = []
    summary = run_all(context, tmp_path, progress=messages.append)

    assert summary.exists()
    combined = summary.read_text()
    for experiment in all_experiments():
        assert (tmp_path / f"{experiment.name}.txt").exists()
        assert experiment.name in combined or experiment.name == "table3"
    assert len(messages) == len(all_experiments())
    assert "Figure 9" in combined
    assert "Table 3" in combined
    # Machine-readable exports come from the experiments' csv_rows hooks.
    for csv_name in (
        "fig01_reuse.csv",
        "fig10_hundred_chips.csv",
        "fig12_sensitivity.csv",
    ):
        assert (tmp_path / csv_name).exists()


def test_run_all_summary_contains_no_timings(tmp_path):
    import re

    context = ExperimentContext(n_chips=2, n_references=800, seed=9)
    summary = run_all(context, tmp_path, progress=lambda line: None)
    # Timing lives in progress lines and metrics, never in the summary --
    # that is what keeps serial/parallel/cached summaries byte-identical.
    text = summary.read_text()
    assert not re.search(r"\(\d+\.\d+s\)", text)
    for name in experiment_names():
        assert f"\n{name}\n" in text


def test_run_all_reuses_result_cache(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    context = ExperimentContext(n_chips=2, n_references=800, seed=11)
    first_messages = []
    first = run_all(
        context, tmp_path / "a", progress=first_messages.append, cache=cache
    )
    assert not any("(cached)" in line for line in first_messages)

    second_messages = []
    second = run_all(
        context, tmp_path / "b", progress=second_messages.append, cache=cache
    )
    assert all("(cached)" in line for line in second_messages)
    assert first.read_text() == second.read_text()


def test_run_all_emits_observer_events(tmp_path):
    observer = JSONMetricsObserver(tmp_path / "metrics.json")
    context = ExperimentContext(
        n_chips=2, n_references=800, seed=13, observer=observer
    )
    run_all(context, tmp_path, progress=lambda line: None)
    assert (tmp_path / "metrics.json").exists()
    recorded = [e["name"] for e in observer.metrics["experiments"]]
    assert recorded == list(experiment_names())
    assert observer.metrics["total_elapsed_s"] is not None


def test_cli_main_small_scale(tmp_path):
    from repro.experiments import run_all as run_all_module

    run_all_module.main(
        [
            "--chips", "3",
            "--refs", "1000",
            "--seed", "5",
            "--out", str(tmp_path / "reports"),
        ]
    )
    assert (tmp_path / "reports" / "summary.txt").exists()
    assert (tmp_path / "reports" / "metrics.json").exists()
    assert (tmp_path / "reports" / ".cache").is_dir()


def test_deprecated_experiments_alias_warns():
    from repro.experiments import run_all as run_all_module

    with pytest.warns(DeprecationWarning):
        pairs = run_all_module.EXPERIMENTS
    assert [name for name, _ in pairs] == list(experiment_names())
    # Each module still exposes the historical run/report surface.
    for _, module in pairs:
        assert callable(module.run) and callable(module.report)


def test_deprecated_write_csv_exports_delegates(tmp_path):
    from repro.experiments import fig01_reuse
    from repro.experiments import run_all as run_all_module

    result = fig01_reuse.run(
        ExperimentContext(n_chips=1, n_references=500, seed=2)
    )
    with pytest.warns(DeprecationWarning):
        run_all_module._write_csv_exports(tmp_path, "fig01_reuse", result)
    assert (tmp_path / "fig01_reuse.csv").exists()
