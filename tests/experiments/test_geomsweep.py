"""The geometry/banking sweep driver."""

import pytest

from repro.array import CacheGeometry
from repro.engine.registry import experiment_names, get_experiment
from repro.experiments import geomsweep
from repro.experiments.runner import ExperimentContext


@pytest.fixture(scope="module")
def small_sweep():
    context = ExperimentContext(n_chips=2, n_references=600, seed=21)
    return geomsweep.run(
        context,
        sizes_kb=(16, 64),
        banks_sweep=(2, 4),
        ways_sweep=(1, 4),
        severities=("typical", "severe"),
    )


class TestGridShape:
    def test_full_grid_meets_the_500_configuration_floor(self):
        cells = (
            len(geomsweep.SIZES_KB)
            * len(geomsweep.WAYS_SWEEP)
            * len(geomsweep.BANKS_SWEEP)
            * len(geomsweep.SCHEMES)
            * len(geomsweep.SEVERITIES)
        )
        assert cells >= 500

    def test_sweep_geometries_cover_the_grid(self):
        geometries = geomsweep.sweep_geometries()
        assert len(geometries) == (
            len(geomsweep.SIZES_KB)
            * len(geomsweep.BANKS_SWEEP)
            * len(geomsweep.WAYS_SWEEP)
        )
        # Construction through from_capacity/with_ways already enforces
        # the __post_init__ invariants; spot-check the derived identity.
        for geometry in geometries:
            assert geometry.n_subarrays == 2 * geometry.banks

    def test_paper_point_is_in_the_swept_space(self):
        assert CacheGeometry() in geomsweep.sweep_geometries()


class TestSmallSweep:
    def test_cell_count(self, small_sweep):
        assert small_sweep.n_configurations == 2 * 2 * 2 * 3 * 2

    def test_full_kernel_coverage(self, small_sweep):
        assert small_sweep.fast_path_coverage == 1.0
        assert all(
            row.fast_path_coverage == 1.0 for row in small_sweep.rows
        )

    def test_yields_are_fractions_over_live_chips(self, small_sweep):
        for row in small_sweep.rows:
            assert 0.0 <= row.frequency_yield <= 1.0
            assert 0 <= row.chips <= 2

    def test_leakage_grows_with_size_and_banking(self, small_sweep):
        by_point = {
            (row.size_kb, row.banks): row.leakage_mw
            for row in small_sweep.rows_for("typical", "no-refresh/LRU")
            if row.ways == 4
        }
        assert by_point[(64, 2)] > by_point[(16, 2)]
        assert by_point[(16, 4)] > by_point[(16, 2)]

    def test_report_carries_the_coverage_gate(self, small_sweep):
        text = geomsweep.report(small_sweep)
        assert "fast_path_coverage: 1.000" in text
        assert "configurations: 48" in text

    def test_csv_exports_every_cell(self, small_sweep):
        (export,) = geomsweep.csv_rows(small_sweep)
        assert export.filename == "geomsweep.csv"
        assert len(export.rows) == small_sweep.n_configurations


class TestRegistration:
    def test_registered_after_techcompare(self):
        names = list(experiment_names())
        assert names.index("geomsweep") == names.index("techcompare") + 1

    def test_scale_override_trims_the_chip_batch(self):
        experiment = get_experiment("geomsweep")
        context = ExperimentContext(n_chips=60, n_references=600)
        derived = experiment.context_for(context)
        assert derived.n_chips == 15
