"""The shared CLI surface: one flag set for run_all and every driver."""

import argparse
import json
import pathlib

import pytest

from repro.engine.config import EngineConfig
from repro.engine.faults import FaultPlan
from repro.engine.registry import Experiment, register_experiment
from repro.experiments.cli import (
    cache_from_args,
    checkpoint_dir_from_args,
    context_from_args,
    engine_config_from_args,
    engine_parent_parser,
    experiment_main,
)

SHARED_FLAGS = (
    "--chips", "--refs", "--seed", "--technology", "--workers", "--out",
    "--cache-dir", "--no-cache", "--metrics", "--checkpoint-dir",
    "--resume", "--task-timeout", "--max-retries", "--inject-faults",
)


def _parse(argv):
    parser = argparse.ArgumentParser(parents=[engine_parent_parser()])
    return parser.parse_args(argv)


class TestParentParser:
    def test_all_shared_flags_exposed(self):
        options = set()
        for action in engine_parent_parser()._actions:
            options.update(action.option_strings)
        assert set(SHARED_FLAGS) <= options

    def test_defaults(self):
        args = _parse([])
        assert args.chips == 60 and args.refs == 8000 and args.seed == 2007
        assert args.workers == 1
        assert args.out is None and args.cache_dir is None
        assert args.resume is False and args.checkpoint_dir is None
        assert args.task_timeout is None and args.max_retries == 2
        assert args.inject_faults is None

    def test_every_driver_module_parses_shared_flags(self):
        # The same argv must be accepted when composed into a child
        # parser, which is exactly how run_all and the drivers build
        # theirs.
        args = _parse([
            "--chips", "5", "--refs", "900", "--seed", "3",
            "--workers", "4", "--out", "reports", "--no-cache",
            "--checkpoint-dir", "ckpt", "--resume",
            "--task-timeout", "2.5", "--max-retries", "4",
            "--inject-faults", "seed=7,crash=0.2",
        ])
        assert args.workers == 4
        assert args.out == pathlib.Path("reports")
        assert args.checkpoint_dir == pathlib.Path("ckpt")
        assert args.task_timeout == 2.5


class TestConfigFromArgs:
    def test_checkpoint_dir_precedence(self):
        explicit = _parse(["--checkpoint-dir", "ckpt", "--out", "o"])
        assert checkpoint_dir_from_args(explicit) == pathlib.Path("ckpt")
        derived = _parse(["--out", "o"])
        assert checkpoint_dir_from_args(derived) == pathlib.Path(
            "o/.checkpoints"
        )
        neither = _parse([])
        assert checkpoint_dir_from_args(neither) is None

    def test_engine_config_round_trip(self):
        args = _parse([
            "--workers", "3", "--out", "o", "--resume",
            "--task-timeout", "1.5", "--max-retries", "5",
            "--inject-faults", "seed=7,crash=0.2",
        ])
        config = engine_config_from_args(args)
        assert config == EngineConfig(
            workers=3,
            checkpoint_dir=pathlib.Path("o/.checkpoints"),
            resume=True,
            task_timeout=1.5,
            max_retries=5,
            fault_plan=FaultPlan(seed=7, crash_rate=0.2),
        )

    def test_resume_without_journal_location_exits(self):
        with pytest.raises(SystemExit):
            engine_config_from_args(_parse(["--resume"]))

    def test_context_from_args_wires_engine(self):
        context = context_from_args(
            _parse(["--chips", "2", "--refs", "700", "--workers", "2"])
        )
        assert context.n_chips == 2 and context.n_references == 700
        assert context.engine.workers == 2

    def test_technology_flag_round_trips_to_context(self):
        assert _parse([]).technology == "3t1d"
        args = _parse(["--technology", "sttram"])
        assert args.technology == "sttram"
        assert context_from_args(args).technology == "sttram"

    def test_technology_flag_rejects_unknown_backend(self, capsys):
        with pytest.raises(SystemExit):
            _parse(["--technology", "bubble-memory"])
        assert "sttram" in capsys.readouterr().err

    def test_cache_policy(self, tmp_path):
        assert cache_from_args(_parse([])) is None
        assert cache_from_args(_parse(["--no-cache", "--out", "o"])) is None
        cache = cache_from_args(_parse(["--out", str(tmp_path)]))
        assert cache is not None
        assert cache.directory == tmp_path / ".cache"
        explicit = cache_from_args(
            _parse(["--cache-dir", str(tmp_path / "c")])
        )
        assert explicit.directory == tmp_path / "c"


def _probe_run(context):
    return {"chips": context.n_chips, "workers": context.workers}


def _probe_report(result):
    return f"probe: chips={result['chips']} workers={result['workers']}"


@pytest.fixture
def probe_experiment():
    from repro.engine import registry

    experiment = register_experiment(Experiment(
        name="probe-cli", run=_probe_run, report=_probe_report
    ))
    try:
        yield experiment
    finally:
        registry._REGISTRY.pop("probe-cli", None)


class TestExperimentMain:
    def test_end_to_end_writes_report_and_metrics(
        self, probe_experiment, tmp_path, capsys
    ):
        out = tmp_path / "reports"
        experiment_main("probe-cli", [
            "--chips", "3", "--refs", "600", "--out", str(out), "--no-cache",
        ])
        assert "probe: chips=3 workers=1" in capsys.readouterr().out
        assert (out / "probe-cli.txt").read_text().startswith("probe:")
        metrics = json.loads((out / "probe-cli_metrics.json").read_text())
        assert metrics["experiments"][0]["name"] == "probe-cli"
        assert "robustness" in metrics

    def test_cli_method_resolves_registration(
        self, probe_experiment, tmp_path, capsys
    ):
        probe_experiment.cli(["--chips", "2", "--refs", "600"])
        assert "chips=2" in capsys.readouterr().out

    def test_result_cache_reused_across_invocations(
        self, probe_experiment, tmp_path, capsys
    ):
        out = tmp_path / "reports"
        argv = ["--chips", "2", "--refs", "600", "--out", str(out)]
        experiment_main("probe-cli", argv)
        first = json.loads((out / "probe-cli_metrics.json").read_text())
        experiment_main("probe-cli", argv)
        second = json.loads((out / "probe-cli_metrics.json").read_text())
        assert first["experiments"][0]["cached"] is False
        assert second["experiments"][0]["cached"] is True
        assert capsys.readouterr().out.count("probe:") == 2

    def test_every_registered_experiment_has_cli(self):
        from repro.engine.registry import all_experiments

        for experiment in all_experiments():
            assert callable(experiment.cli)
