"""Golden bit-identity of the 64KB paper point across the geometry API.

The parametric geometry model scales timing/energy/leakage for swept
organisations, but the paper's fixed 64KB / 4-way / 8-subarray point
must stay a *point* in the swept space: every scaling factor
short-circuits to exactly 1.0 there, so driver outputs are byte-for-byte
what they were before geometry became a parameter.  These digests pin
that contract; a change here means the paper reproduction moved.
"""

import hashlib

from repro.array import CacheGeometry
from repro.experiments import fig10_hundred_chips, table3
from repro.experiments.runner import ExperimentContext

GOLDEN_FIG10_DIGEST = (
    "c4062ea884fbf9f1d9c5eab4cdd3e5bcefb2bfead5ef447a32e504add7eb8033"
)
GOLDEN_TABLE3_DIGEST = (
    "7a0e4cb27294abbca94cba556ca3d502c134f47a092cf3527cdd52a1b9855423"
)
GOLDEN_SCALE = dict(n_chips=2, n_references=800, seed=9)


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def test_fig10_report_is_byte_identical():
    context = ExperimentContext(**GOLDEN_SCALE)
    text = fig10_hundred_chips.report(fig10_hundred_chips.run(context))
    assert _digest(text) == GOLDEN_FIG10_DIGEST


def test_table3_report_is_byte_identical():
    context = ExperimentContext(**GOLDEN_SCALE)
    text = table3.report(table3.run(context))
    assert _digest(text) == GOLDEN_TABLE3_DIGEST


def test_default_fingerprint_has_no_geometry_suffix():
    # Cache entries, run journals, and resume keys from before the
    # geometry redesign must stay valid for paper-point runs.
    default = ExperimentContext(**GOLDEN_SCALE)
    explicit = default.with_overrides(geometry=CacheGeometry())
    assert "geometry=" not in default.cache_fingerprint()
    assert explicit.cache_fingerprint() == default.cache_fingerprint()


def test_explicit_paper_geometry_spec_stays_legacy_compatible():
    # An explicit paper-point geometry evaluates through the same
    # CacheConfig as the legacy ways-only spec.
    default = ExperimentContext(**GOLDEN_SCALE)
    explicit = default.with_overrides(geometry=CacheGeometry())
    assert (
        explicit.evaluator_spec().build().config
        == default.evaluator_spec().build().config
    )
