"""Benchmark profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.variation import harmonic_mean
from repro.workloads import (
    SPEC2000_PROFILES,
    BenchmarkProfile,
    benchmark_names,
    get_profile,
)


class TestRegistry:
    def test_eight_benchmarks(self):
        assert len(SPEC2000_PROFILES) == 8

    def test_paper_benchmark_set(self):
        assert set(benchmark_names()) == {
            "applu", "crafty", "fma3d", "gcc", "gzip", "mcf", "mesa", "twolf",
        }

    def test_lookup(self):
        assert get_profile("mcf").name == "mcf"

    def test_unknown_benchmark(self):
        with pytest.raises(ConfigurationError):
            get_profile("bzip2")


class TestCalibration:
    def test_harmonic_mean_ipc_near_paper(self):
        # Table 3: ~0.97 IPC at the ideal cache (4.17 BIPS / 4.3 GHz).
        ipc = harmonic_mean(
            [get_profile(n).base_ipc for n in benchmark_names()]
        )
        assert ipc == pytest.approx(0.97, abs=0.08)

    def test_average_reuse_at_6k_near_90pct(self):
        # Figure 1: ~90% of references within 6K cycles on average.
        average = sum(
            get_profile(n).reuse_cdf(6000) for n in benchmark_names()
        ) / 8
        assert average == pytest.approx(0.90, abs=0.03)

    def test_mcf_is_memory_bound(self):
        mcf = get_profile("mcf")
        others = [get_profile(n) for n in benchmark_names() if n != "mcf"]
        assert mcf.base_ipc < min(p.base_ipc for p in others)
        assert mcf.l2_miss_rate > max(p.l2_miss_rate for p in others)

    def test_fma3d_has_one_of_the_heaviest_reuse_tails(self):
        # The paper's worst-case benchmark for retention sensitivity; in
        # our profiles only the pathologically memory-bound mcf exceeds it.
        survivals = {
            n: get_profile(n).reuse_survival(10000) for n in benchmark_names()
        }
        ranked = sorted(survivals, key=survivals.get, reverse=True)
        assert "fma3d" in ranked[:2]

    def test_cache_traffic_reasonable(self):
        # Section 4.1: cache traffic usually no more than ~30% of cycles.
        for name in benchmark_names():
            assert 0.1 < get_profile(name).cache_traffic_per_cycle < 0.55


class TestReuseCdf:
    def test_zero_distance(self):
        assert get_profile("gcc").reuse_cdf(0) == 0.0

    def test_monotone(self):
        profile = get_profile("twolf")
        values = [profile.reuse_cdf(d) for d in (100, 1000, 5000, 20000)]
        assert values == sorted(values)

    def test_survival_complements_cdf(self):
        profile = get_profile("gzip")
        assert profile.reuse_cdf(4000) + profile.reuse_survival(
            4000
        ) == pytest.approx(1.0)

    def test_long_distance_approaches_one(self):
        # The L2-tier component has a ~1M-cycle scale; by 10M everything
        # has been reused.
        assert get_profile("applu").reuse_cdf(1e7) == pytest.approx(
            1.0, abs=1e-3
        )


class TestValidation:
    def _valid_kwargs(self):
        return dict(
            name="x", base_ipc=1.0, mem_refs_per_instr=0.3,
            store_fraction=0.3, working_set_lines=100, accesses_per_line=5.0,
            tau_burst_cycles=1000.0, p_long=0.1, tau_long_cycles=10000.0,
            fp_fraction=0.1, branch_fraction=0.1, branch_bias=0.9,
            l2_miss_rate=0.05, miss_overlap=0.5,
        )

    def test_valid_accepted(self):
        BenchmarkProfile(**self._valid_kwargs())

    @pytest.mark.parametrize(
        "field, value",
        [
            ("base_ipc", 0.0),
            ("mem_refs_per_instr", 1.5),
            ("store_fraction", -0.1),
            ("working_set_lines", 0),
            ("accesses_per_line", 0.5),
            ("tau_burst_cycles", 0.0),
            ("p_long", 1.5),
            ("miss_overlap", -0.2),
        ],
    )
    def test_rejects_bad_field(self, field, value):
        kwargs = self._valid_kwargs()
        kwargs[field] = value
        with pytest.raises(ConfigurationError):
            BenchmarkProfile(**kwargs)
