"""Synthetic trace generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.cpu.isa import OpClass
from repro.workloads import SyntheticWorkload, get_profile
from repro.workloads.reuse import reference_distance_cdf


@pytest.fixture(scope="module")
def gcc_trace():
    return SyntheticWorkload(get_profile("gcc"), seed=1).memory_trace(8000)


class TestMemoryTrace:
    def test_length(self, gcc_trace):
        assert len(gcc_trace) == 8000

    def test_cycles_non_decreasing(self, gcc_trace):
        assert np.all(np.diff(gcc_trace.cycles) >= 0)

    def test_store_fraction_matches_profile(self, gcc_trace):
        assert np.mean(gcc_trace.is_write) == pytest.approx(0.35, abs=0.03)

    def test_traffic_rate_matches_profile(self, gcc_trace):
        profile = get_profile("gcc")
        rate = len(gcc_trace) / gcc_trace.duration_cycles
        assert rate == pytest.approx(profile.cache_traffic_per_cycle, rel=0.1)

    def test_instruction_count(self, gcc_trace):
        profile = get_profile("gcc")
        assert gcc_trace.instructions == pytest.approx(
            8000 / profile.mem_refs_per_instr, rel=0.01
        )

    def test_deterministic(self):
        a = SyntheticWorkload(get_profile("mcf"), seed=5).memory_trace(1000)
        b = SyntheticWorkload(get_profile("mcf"), seed=5).memory_trace(1000)
        assert np.array_equal(a.line_addresses, b.line_addresses)
        assert np.array_equal(a.cycles, b.cycles)

    def test_seed_changes_trace(self):
        a = SyntheticWorkload(get_profile("mcf"), seed=5).memory_trace(1000)
        b = SyntheticWorkload(get_profile("mcf"), seed=6).memory_trace(1000)
        assert not np.array_equal(a.line_addresses, b.line_addresses)

    def test_reuse_rate_matches_profile(self, gcc_trace):
        stats = reference_distance_cdf(gcc_trace)
        expected_new = 1 / get_profile("gcc").accesses_per_line
        assert stats.n_loads / len(gcc_trace) == pytest.approx(
            expected_new, rel=0.15
        )

    def test_measured_reuse_cdf_matches_model(self, gcc_trace):
        profile = get_profile("gcc")
        stats = reference_distance_cdf(gcc_trace)
        for distance in (2000, 6000, 15000):
            assert stats.cdf_at(distance) == pytest.approx(
                profile.reuse_cdf(distance), abs=0.05
            )

    def test_rejects_negative_count(self):
        with pytest.raises(ConfigurationError):
            SyntheticWorkload(get_profile("gcc")).memory_trace(-1)


class TestWarmup:
    def test_warmup_prepended(self):
        trace = SyntheticWorkload(get_profile("gcc"), seed=2).memory_trace(
            500, warmup_lines=64
        )
        assert trace.warmup_references == 64
        assert len(trace) == 564

    def test_warmup_lines_distinct_and_high(self):
        trace = SyntheticWorkload(get_profile("gcc"), seed=2).memory_trace(
            500, warmup_lines=64
        )
        warm = trace.line_addresses[:64]
        assert len(set(warm.tolist())) == 64
        assert warm.min() >= 10 ** 9

    def test_measured_window_excludes_warmup(self):
        trace = SyntheticWorkload(get_profile("gcc"), seed=2).memory_trace(
            500, warmup_lines=64
        )
        assert trace.measured_window_cycles < trace.duration_cycles

    def test_no_warmup_window_is_duration(self):
        trace = SyntheticWorkload(get_profile("gcc"), seed=2).memory_trace(100)
        assert trace.measured_window_cycles == trace.duration_cycles

    def test_rejects_negative_warmup(self):
        with pytest.raises(ConfigurationError):
            SyntheticWorkload(get_profile("gcc")).memory_trace(
                10, warmup_lines=-1
            )


class TestInstructionTrace:
    @pytest.fixture(scope="class")
    def instr_trace(self):
        return SyntheticWorkload(get_profile("gcc"), seed=3).instruction_trace(
            6000
        )

    def test_length(self, instr_trace):
        assert len(instr_trace) == 6000

    def test_memory_fraction_matches_profile(self, instr_trace):
        assert instr_trace.memory_fraction == pytest.approx(0.33, abs=0.03)

    def test_branch_fraction_matches_profile(self, instr_trace):
        assert instr_trace.branch_fraction == pytest.approx(0.18, abs=0.03)

    def test_memory_ops_have_addresses(self, instr_trace):
        mask = instr_trace.memory_mask
        assert np.all(instr_trace.line_address[mask] >= 0)
        assert np.all(instr_trace.line_address[~mask] == -1)

    def test_dependencies_stay_in_range(self, instr_trace):
        indices = np.arange(len(instr_trace))
        assert np.all(instr_trace.dep1 <= indices)
        assert np.all(instr_trace.dep2 <= indices)

    def test_fp_codes_carry_fp_ops(self):
        fp_trace = SyntheticWorkload(
            get_profile("applu"), seed=3
        ).instruction_trace(4000)
        fp_count = np.sum(fp_trace.op == int(OpClass.FP_ALU))
        assert fp_count > 0.3 * len(fp_trace)

    def test_shares_memory_stream_when_given(self):
        workload = SyntheticWorkload(get_profile("gcc"), seed=4)
        memory = workload.memory_trace(4000)
        trace = workload.instruction_trace(6000, memory=memory)
        mem_lines = trace.line_address[trace.memory_mask]
        assert np.array_equal(
            mem_lines, memory.line_addresses[: len(mem_lines)]
        )
