"""Reference-distance measurement (Figure 1 machinery)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.generator import MemoryTrace
from repro.workloads.reuse import reference_distance_cdf


def make_trace(cycles, lines):
    n = len(cycles)
    return MemoryTrace(
        cycles=np.asarray(cycles, dtype=np.int64),
        line_addresses=np.asarray(lines, dtype=np.int64),
        is_write=np.zeros(n, dtype=bool),
        name="unit",
        instructions=n * 3,
    )


class TestMeasurement:
    def test_first_touch_is_load(self):
        stats = reference_distance_cdf(make_trace([0, 10, 20], [1, 2, 3]))
        assert stats.n_loads == 3
        assert len(stats.distances) == 0

    def test_reuse_distance_from_load_not_last_touch(self):
        # Line 1 loaded at 0, touched at 100 and 300: distances 100, 300.
        stats = reference_distance_cdf(
            make_trace([0, 100, 300], [1, 1, 1])
        )
        assert list(stats.distances) == [100, 300]

    def test_cdf_at(self):
        stats = reference_distance_cdf(
            make_trace([0, 100, 300], [1, 1, 1])
        )
        assert stats.cdf_at(100) == pytest.approx(0.5)
        assert stats.cdf_at(300) == pytest.approx(1.0)

    def test_cdf_series(self):
        stats = reference_distance_cdf(
            make_trace([0, 100, 300], [1, 1, 1])
        )
        series = stats.cdf_series([50, 150, 500])
        assert list(series) == [0.0, 0.5, 1.0]

    def test_mean_distance(self):
        stats = reference_distance_cdf(
            make_trace([0, 100, 300], [1, 1, 1])
        )
        assert stats.mean_distance == pytest.approx(200.0)

    def test_empty_trace(self):
        stats = reference_distance_cdf(make_trace([], []))
        assert stats.n_loads == 0
        assert stats.cdf_at(1000) == 0.0
        assert stats.mean_distance == 0.0


class TestReloadHorizon:
    def test_idle_line_reanchors(self):
        # Line 1 idle for 10_000 cycles: the second touch counts as a
        # fresh load under a 5_000-cycle horizon.
        stats = reference_distance_cdf(
            make_trace([0, 20_000, 20_100], [1, 1, 1]),
            reload_horizon_cycles=5_000,
        )
        assert stats.n_loads == 2
        assert list(stats.distances) == [100]

    def test_infinite_horizon_keeps_anchor(self):
        stats = reference_distance_cdf(
            make_trace([0, 20_000, 20_100], [1, 1, 1])
        )
        assert stats.n_loads == 1
        assert list(stats.distances) == [20_000, 20_100]

    def test_rejects_nonpositive_horizon(self):
        with pytest.raises(ConfigurationError):
            reference_distance_cdf(
                make_trace([0], [1]), reload_horizon_cycles=0
            )
