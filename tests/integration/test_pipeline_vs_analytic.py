"""Cross-validation: the cycle-level pipeline vs. the analytic CPU model.

The Monte-Carlo sweeps use the analytic model; this test drives the full
out-of-order pipeline over the same synthetic workloads and checks that
the two agree on (a) the baseline IPC within a coarse band and (b) the
*direction and rough size* of the slowdown caused by a degraded cache.
"""

import pytest

from repro.cpu import CacheMemory, Core
from repro.cpu.pipeline import IdealMemory
from repro.cpu.perfmodel import AnalyticCPUModel
from repro.cache.config import CacheConfig
from repro.cache.controller import RetentionAwareCache
from repro.workloads import SyntheticWorkload, get_profile

N_INSTRUCTIONS = 30_000


@pytest.mark.parametrize(
    "bench_name, band",
    [("gcc", 0.25), ("mesa", 0.3), ("crafty", 0.3), ("twolf", 0.25),
     ("fma3d", 0.3), ("gzip", 0.3), ("applu", 0.45),
     # mcf's IPC is dominated by its L2-miss stalls; the profile's 0.5
     # matches the paper's BIPS bookkeeping while the cycle-level model
     # lands nearer the historically measured ~0.2-0.3.
     ("mcf", 0.65)],
)
def test_baseline_ipc_within_band(bench_name, band):
    """Pipeline IPC over the baseline (ideal 6T) cache lands near the
    profile's base_ipc, which bakes in that cache's own miss costs."""
    profile = get_profile(bench_name)
    config = CacheConfig(l2_miss_rate=profile.l2_miss_rate)
    workload = SyntheticWorkload(profile, seed=11)
    memory_trace = workload.memory_trace(
        int(N_INSTRUCTIONS * profile.mem_refs_per_instr)
    )
    trace = workload.instruction_trace(N_INSTRUCTIONS, memory=memory_trace)
    memory = CacheMemory(RetentionAwareCache(config), config)
    result = Core().run(trace, memory)
    assert result.ipc == pytest.approx(profile.base_ipc, rel=band)


def test_degraded_cache_slows_pipeline_and_model_agrees():
    profile = get_profile("gcc")
    workload = SyntheticWorkload(profile, seed=12)
    memory_trace = workload.memory_trace(
        int(N_INSTRUCTIONS * profile.mem_refs_per_instr)
    )
    trace = workload.instruction_trace(N_INSTRUCTIONS, memory=memory_trace)
    config = CacheConfig()

    ideal = Core().run(
        trace, CacheMemory(RetentionAwareCache(config), config)
    )

    # A uniformly short-retention cache: plenty of expiry misses.
    import numpy as np

    short = np.full((config.geometry.n_sets, config.geometry.ways), 4000)
    cache = RetentionAwareCache(config, short, quantize=False)
    degraded = Core().run(trace, CacheMemory(cache, config))

    pipeline_slowdown = degraded.ipc / ideal.ipc
    assert pipeline_slowdown < 0.995  # the pipeline feels the misses

    # Analytic model on the same reference stream (open-loop timing).
    open_cache = RetentionAwareCache(config, short, quantize=False)
    baseline_cache = RetentionAwareCache(config)
    cycles = memory_trace.cycles
    stats = open_cache.run_trace(
        cycles, memory_trace.line_addresses, memory_trace.is_write
    )
    base_stats = baseline_cache.run_trace(
        cycles, memory_trace.line_addresses, memory_trace.is_write
    )
    model = AnalyticCPUModel(profile, config)
    estimate = model.estimate(
        stats,
        instructions=memory_trace.instructions,
        window_cycles=memory_trace.duration_cycles,
        baseline_stats=base_stats,
    )
    analytic_slowdown = estimate.ipc / profile.base_ipc
    assert analytic_slowdown < 1.0
    # Coarse agreement: both see a single-digit-to-low-teens percent hit.
    assert analytic_slowdown == pytest.approx(pipeline_slowdown, abs=0.12)


def test_port_blocking_direction_matches():
    """Refresh-style port stealing slows the pipeline, as the model says."""
    profile = get_profile("mesa")
    trace = SyntheticWorkload(profile, seed=13).instruction_trace(20_000)

    class BusyPortMemory(IdealMemory):
        """One read port stolen every other cycle (a crude 50% duty)."""

        def load(self, cycle, line_address):
            penalty = 1.0 if cycle % 2 == 0 else 0.0
            return self.hit_latency_cycles + penalty

    free = Core().run(trace, IdealMemory())
    blocked = Core().run(trace, BusyPortMemory())
    assert blocked.ipc < free.ipc
