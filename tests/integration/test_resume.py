"""Interrupt-then-resume bit-identity: SIGKILL a run, resume, compare.

The headline robustness guarantee: a run killed at an arbitrary point
and restarted with ``--resume`` emits outputs byte-identical to an
uninterrupted run, while restoring (not recomputing) every chip result
that reached the journal.  Exercised end-to-end through the real CLIs
for fig10 (the 100-chip experiment) and table3.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.engine.checkpoint import MAGIC

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

CASES = {
    "fig10_hundred_chips": ["--chips", "3", "--refs", "400"],
    "table3": ["--chips", "4", "--refs", "300"],
}


def _cli(name, out, extra=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.Popen(
        [
            sys.executable, "-m", f"repro.experiments.{name}",
            *CASES[name], "--no-cache", "--out", str(out), *extra,
        ],
        cwd=REPO_ROOT, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _wait(process, timeout=300):
    assert process.wait(timeout=timeout) == 0


def _kill_once_journal_grows(process, checkpoint_dir, timeout=300):
    """SIGKILL the run as soon as its journal holds durable bytes.

    Returns True if the process was killed mid-run; False if it finished
    first (the journal is then complete, and resume restores everything,
    which still exercises the restore path).
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            return False
        journals = list(checkpoint_dir.glob("run-*.journal"))
        if any(j.stat().st_size > len(MAGIC) for j in journals):
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
            return True
        time.sleep(0.002)
    pytest.fail("journal never appeared before the timeout")


def _outputs(out_dir):
    """Report/CSV bytes, excluding metrics (timing) and engine state."""
    files = {}
    for path in sorted(out_dir.iterdir()):
        if path.is_file() and not path.name.endswith("_metrics.json"):
            files[path.name] = path.read_bytes()
    return files


@pytest.mark.parametrize("name", sorted(CASES))
def test_sigkill_then_resume_is_bit_identical(name, tmp_path):
    baseline_dir = tmp_path / "baseline"
    resumed_dir = tmp_path / "resumed"

    _wait(_cli(name, baseline_dir))

    interrupted = _cli(name, resumed_dir)
    killed = _kill_once_journal_grows(
        interrupted, resumed_dir / ".checkpoints"
    )
    if killed:
        assert interrupted.returncode == -signal.SIGKILL
        # A killed run must not have produced the final report.
        assert not (resumed_dir / f"{name}.txt").exists()

    _wait(_cli(name, resumed_dir, extra=["--resume"]))

    assert _outputs(resumed_dir) == _outputs(baseline_dir)
    metrics = json.loads(
        (resumed_dir / f"{name}_metrics.json").read_text()
    )
    # The resumed run restored journalled chip results instead of
    # recomputing them.
    assert metrics["robustness"]["results_resumed"] > 0


def test_seeded_fault_injection_preserves_outputs(tmp_path):
    """A faulty run (crashes, errors, corruption) emits identical bytes."""
    name = "fig10_hundred_chips"
    clean_dir = tmp_path / "clean"
    faulty_dir = tmp_path / "faulty"
    _wait(_cli(name, clean_dir))
    _wait(_cli(
        name, faulty_dir,
        extra=[
            "--workers", "2", "--max-retries", "4",
            "--inject-faults", "seed=7,crash=0.15,error=0.15,corrupt=0.1",
        ],
    ))
    assert _outputs(faulty_dir) == _outputs(clean_dir)
