"""Scheme-ordering claims from Figures 9-11 (severe variation)."""

import pytest

from repro import (
    Cache3T1DArchitecture,
    ChipSampler,
    Evaluator,
    NODE_32NM,
    SCHEME_NO_REFRESH_LRU,
    SCHEME_PARTIAL_DSP,
    SCHEME_RSP_FIFO,
    VariationParams,
    YieldModel,
    get_scheme,
)

BENCHMARKS = ["gcc", "mcf", "mesa"]


@pytest.fixture(scope="module")
def chips():
    sampler = ChipSampler(NODE_32NM, VariationParams.severe(), seed=88)
    batch = sampler.sample_3t1d_chips(16)
    return YieldModel(batch).pick_good_median_bad()


@pytest.fixture(scope="module")
def evaluator():
    return Evaluator(NODE_32NM, n_references=5000, seed=8)


def perf(evaluator, chip, scheme_name):
    arch = Cache3T1DArchitecture(chip, get_scheme(scheme_name))
    return evaluator.evaluate(arch, benchmarks=BENCHMARKS).normalized_performance


class TestFigure9Ordering:
    def test_dsp_beats_plain_lru_on_bad_chip(self, chips, evaluator):
        _, _, bad = chips
        assert perf(evaluator, bad, "no-refresh/DSP") > perf(
            evaluator, bad, "no-refresh/LRU"
        )

    def test_partial_refresh_beats_no_refresh(self, chips, evaluator):
        _, _, bad = chips
        assert perf(evaluator, bad, "partial-refresh/LRU") > perf(
            evaluator, bad, "no-refresh/LRU"
        )
        assert perf(evaluator, bad, "partial-refresh/DSP") >= perf(
            evaluator, bad, "no-refresh/DSP"
        )

    def test_rsp_schemes_among_best_on_bad_chip(self, chips, evaluator):
        _, _, bad = chips
        rsp = perf(evaluator, bad, "RSP-FIFO")
        assert rsp > perf(evaluator, bad, "no-refresh/LRU")
        assert rsp > perf(evaluator, bad, "partial-refresh/LRU")

    def test_bad_chip_worst_for_every_scheme(self, chips, evaluator):
        good, _, bad = chips
        for name in ("no-refresh/LRU", "partial-refresh/DSP", "RSP-FIFO"):
            assert perf(evaluator, bad, name) <= perf(evaluator, good, name) + 0.01

    def test_all_schemes_keep_bad_chip_functional(self, chips, evaluator):
        """Figure 10: even the worst chips stay usable (vs discarded).

        Our severe-variation tail is heavier than the paper's, so a bad
        chip under the retention-blind no-refresh/LRU scheme can lose more
        than their ~12%; the retention-aware schemes must still hold it
        close to ideal.
        """
        _, _, bad = chips
        assert perf(evaluator, bad, "no-refresh/LRU") > 0.5
        assert perf(evaluator, bad, "partial-refresh/DSP") > 0.8
        assert perf(evaluator, bad, "RSP-FIFO") > 0.8

    def test_headline_schemes_within_a_few_percent_on_good_chip(
        self, chips, evaluator
    ):
        good, _, _ = chips
        for scheme in (SCHEME_PARTIAL_DSP, SCHEME_RSP_FIFO):
            arch = Cache3T1DArchitecture(good, scheme)
            result = evaluator.evaluate(arch, benchmarks=BENCHMARKS)
            assert result.normalized_performance > 0.93


class TestFigure11Associativity:
    def test_direct_mapped_schemes_converge(self, chips):
        _, _, bad = chips
        evaluator = Evaluator(
            NODE_32NM,
            config=None,
            n_references=5000,
            seed=8,
        )
        from repro.cache.config import CacheConfig

        dm_config = CacheConfig().with_ways(1)
        dm_eval = Evaluator(NODE_32NM, config=dm_config, n_references=5000, seed=8)
        perfs = []
        for scheme in (SCHEME_NO_REFRESH_LRU, SCHEME_PARTIAL_DSP, SCHEME_RSP_FIFO):
            arch = Cache3T1DArchitecture(bad, scheme, config=dm_config)
            perfs.append(
                dm_eval.evaluate(arch, benchmarks=BENCHMARKS).normalized_performance
            )
        # Placement cannot act in a direct-mapped cache: only refresh
        # differentiates, so the spread stays small.
        assert max(perfs) - min(perfs) < 0.08

    def test_associativity_helps_retention_schemes(self, chips):
        _, _, bad = chips
        from repro.cache.config import CacheConfig

        spreads = {}
        for ways in (1, 4):
            config = CacheConfig().with_ways(ways)
            evaluator = Evaluator(
                NODE_32NM, config=config, n_references=5000, seed=8
            )
            perfs = [
                evaluator.evaluate(
                    Cache3T1DArchitecture(bad, scheme, config=config),
                    benchmarks=BENCHMARKS,
                ).normalized_performance
                for scheme in (SCHEME_NO_REFRESH_LRU, SCHEME_RSP_FIFO)
            ]
            spreads[ways] = perfs[1] - perfs[0]
        # RSP's advantage over plain LRU appears with associativity.
        assert spreads[4] > spreads[1]
