"""Closed-form analytic evaluation vs the event-driven simulator."""

import pytest

from repro import (
    Cache3T1DArchitecture,
    ChipSampler,
    Evaluator,
    NODE_32NM,
    VariationParams,
    YieldModel,
    get_profile,
    get_scheme,
)
from repro.core.analytic import evaluate_analytically
from repro.errors import ConfigurationError

BENCHMARKS = ("gcc", "mesa")
SCHEMES = ("no-refresh/LRU", "no-refresh/DSP", "RSP-FIFO")


@pytest.fixture(scope="module")
def chips():
    sampler = ChipSampler(NODE_32NM, VariationParams.severe(), seed=909)
    batch = sampler.sample_3t1d_chips(12)
    return YieldModel(batch).pick_good_median_bad()


@pytest.fixture(scope="module")
def evaluator():
    return Evaluator(NODE_32NM, n_references=6000, seed=17)


class TestAgreementWithEventMode:
    @pytest.mark.parametrize("scheme_name", SCHEMES)
    @pytest.mark.parametrize("bench", BENCHMARKS)
    def test_normalized_performance_close(
        self, chips, evaluator, scheme_name, bench
    ):
        good, median, _ = chips
        for chip in (good, median):
            architecture = Cache3T1DArchitecture(chip, get_scheme(scheme_name))
            event = evaluator.evaluate_benchmark(architecture, bench)
            window = evaluator.trace(bench).measured_window_cycles
            closed = evaluate_analytically(
                architecture, get_profile(bench), window_cycles=window
            )
            assert closed.normalized_performance == pytest.approx(
                event.normalized_performance, abs=0.08
            )

    def test_scheme_ordering_preserved_on_median_chip(self, chips, evaluator):
        _, median, _ = chips
        profile = get_profile("gcc")
        window = evaluator.trace("gcc").measured_window_cycles
        closed = {
            name: evaluate_analytically(
                Cache3T1DArchitecture(median, get_scheme(name)), profile,
                window_cycles=window,
            ).normalized_performance
            for name in SCHEMES
        }
        event = {
            name: evaluator.evaluate_benchmark(
                Cache3T1DArchitecture(median, get_scheme(name)), "gcc"
            ).normalized_performance
            for name in SCHEMES
        }
        assert (closed["RSP-FIFO"] >= closed["no-refresh/LRU"]) == (
            event["RSP-FIFO"] >= event["no-refresh/LRU"]
        )

    def test_dead_ways_reported(self, chips):
        _, _, bad = chips
        result = evaluate_analytically(
            Cache3T1DArchitecture(bad, get_scheme("no-refresh/LRU")),
            get_profile("gcc"),
        )
        assert result.dead_way_fraction > 0.0
        assert result.expiry_miss_fraction > 0.0

    def test_ideal_retention_chip_predicts_no_loss(self):
        from repro.array import ChipSampler as CS

        golden = CS.golden_3t1d_chip(NODE_32NM)
        result = evaluate_analytically(
            Cache3T1DArchitecture(golden, get_scheme("no-refresh/LRU")),
            get_profile("gcc"),
        )
        assert result.normalized_performance > 0.97
        assert result.expiry_miss_fraction < 0.01

    def test_global_scheme_rejected(self, chips):
        good, _, _ = chips
        with pytest.raises(ConfigurationError):
            evaluate_analytically(
                Cache3T1DArchitecture(good, get_scheme("global")),
                get_profile("gcc"),
            )

    def test_speed_advantage(self, chips, evaluator):
        import time

        good, _, _ = chips
        architecture = Cache3T1DArchitecture(good, get_scheme("RSP-FIFO"))
        profile = get_profile("gcc")
        start = time.perf_counter()
        for _ in range(20):
            evaluate_analytically(architecture, profile)
        closed_time = (time.perf_counter() - start) / 20
        start = time.perf_counter()
        evaluator.evaluate_benchmark(architecture, "gcc")
        event_time = time.perf_counter() - start
        assert closed_time < event_time
