"""Integration tests pinning the paper's headline claims.

Each test reproduces one quantitative statement from the paper at reduced
Monte-Carlo scale, with bands wide enough to absorb sampling noise but
tight enough to catch regressions of the calibrated models.
"""

import numpy as np
import pytest

from repro import (
    Cache3T1DArchitecture,
    ChipSampler,
    Evaluator,
    NODE_32NM,
    SCHEME_GLOBAL,
    VariationParams,
    YieldModel,
)

N_CHIPS = 20


@pytest.fixture(scope="module")
def typical_chips():
    sampler = ChipSampler(NODE_32NM, VariationParams.typical(), seed=77)
    return sampler.sample_3t1d_chips(N_CHIPS)


@pytest.fixture(scope="module")
def severe_chips():
    sampler = ChipSampler(NODE_32NM, VariationParams.severe(), seed=78)
    return sampler.sample_3t1d_chips(N_CHIPS * 2)


@pytest.fixture(scope="module")
def typical_sram_chips():
    sampler = ChipSampler(NODE_32NM, VariationParams.typical(), seed=79)
    return sampler.sample_sram_chips(N_CHIPS)


class TestSection42TypicalVariation:
    def test_6t_chips_lose_10_to_25_percent(self, typical_sram_chips):
        """Figure 6a: most 1X 6T chips lose 10-20% of frequency."""
        frequencies = [c.normalized_frequency for c in typical_sram_chips]
        median = float(np.median(frequencies))
        assert 0.78 < median < 0.92

    def test_3t1d_retention_spread(self, typical_chips):
        """Figure 6b: chip retention spread of roughly 0.5-3 us.

        The reproduction's distribution has a slightly heavier left tail
        than the paper's (an occasional typical chip with a near-dead
        line, which the global scheme discards), so the lower band checks
        the 25th percentile rather than the minimum.
        """
        retention_ns = np.array(
            [c.chip_retention_time * 1e9 for c in typical_chips]
        )
        assert float(np.percentile(retention_ns, 25)) > 400
        assert max(retention_ns) < 3500
        assert 1000 < float(np.median(retention_ns)) < 2300

    def test_most_chips_within_2pct_under_global_scheme(self, typical_chips):
        """Figure 6b: ~97% of chips lose less than 2% vs ideal 6T."""
        evaluator = Evaluator(NODE_32NM, n_references=4000, seed=3)
        performances = []
        for chip in typical_chips:
            arch = Cache3T1DArchitecture(chip, SCHEME_GLOBAL)
            if not arch.is_operable():
                continue
            performances.append(
                evaluator.evaluate(
                    arch, benchmarks=["gcc", "mesa"]
                ).normalized_performance
            )
        assert len(performances) > 0.7 * N_CHIPS
        within = np.mean([p >= 0.975 for p in performances])
        assert within > 0.8

    def test_3t1d_beats_6t_on_leakage(self, typical_chips, typical_sram_chips):
        """Figure 7: 3T1D leakage far below the 6T distribution."""
        leak_3t1d = np.median([c.normalized_leakage for c in typical_chips])
        leak_6t = np.median(
            [c.normalized_leakage for c in typical_sram_chips]
        )
        assert leak_3t1d < 0.6 * leak_6t

    def test_6t_leakage_tail_heavy(self, typical_sram_chips):
        """Figure 7a: some chips leak several times the golden design."""
        worst = max(c.normalized_leakage for c in typical_sram_chips)
        assert worst > 3.0

    def test_3t1d_leakage_never_explodes(self, typical_chips):
        """Figure 7b: 3T1D leakage never exceeds ~4x golden 6T."""
        worst = max(c.normalized_leakage for c in typical_chips)
        assert worst < 4.0


class TestSection43SevereVariation:
    def test_discard_rate_near_80pct(self, severe_chips):
        """Section 4.3: ~80% of chips discarded under the global scheme."""
        report = YieldModel(severe_chips).report()
        assert 0.6 <= report.discard_rate_global <= 0.95

    def test_dead_line_fractions(self, severe_chips):
        """Figure 8: median chip ~3% dead lines, bad tail ~23%."""
        report = YieldModel(severe_chips).report()
        assert report.median_dead_line_fraction < 0.08
        assert 0.05 < report.p90_dead_line_fraction < 0.45

    def test_every_chip_operable_with_line_level_schemes(self, severe_chips):
        """Figure 10: all 100 chips still function with line-level schemes."""
        from repro import SCHEME_RSP_FIFO

        for chip in severe_chips[:10]:
            arch = Cache3T1DArchitecture(chip, SCHEME_RSP_FIFO)
            assert arch.is_operable()


class TestSection41GlobalScheme:
    def test_nominal_retention_costs_under_one_percent(self):
        """Section 4.1: refresh takes ~8% of bandwidth at 6000ns retention
        and costs < 1% performance."""
        from repro.array import RefreshTiming
        from repro.cpu.perfmodel import AnalyticCPUModel
        from repro.workloads import benchmark_names, get_profile
        from repro.variation import harmonic_mean

        timing = RefreshTiming(NODE_32NM)
        duty = timing.bandwidth_fraction(6000e-9)
        assert duty == pytest.approx(0.0794, abs=0.002)
        performances = []
        for name in benchmark_names():
            model = AnalyticCPUModel(get_profile(name))
            estimate = model.estimate_global_refresh(duty)
            performances.append(estimate.ipc / model.baseline_ipc)
        assert harmonic_mean(performances) > 0.99
