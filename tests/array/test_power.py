"""Cache power model."""

import pytest

from repro.errors import ConfigurationError
from repro.technology import NODE_32NM, calibration
from repro.array import CachePowerModel


@pytest.fixture
def power_6t():
    return CachePowerModel(NODE_32NM, cell_kind="6T")


@pytest.fixture
def power_3t1d():
    return CachePowerModel(NODE_32NM, cell_kind="3T1D")


class TestReferencePowers:
    def test_full_dynamic_power_anchor(self, power_6t):
        assert power_6t.full_dynamic_power == pytest.approx(
            20.75e-3, rel=1e-6
        )

    def test_3t1d_full_power_anchor(self, power_3t1d):
        assert power_3t1d.full_dynamic_power == pytest.approx(
            20.30e-3, rel=1e-6
        )

    def test_ideal_mean_power_anchor(self, power_6t):
        assert power_6t.ideal_mean_dynamic_power == pytest.approx(2.78e-3)

    def test_rejects_unknown_cell(self):
        with pytest.raises(ConfigurationError):
            CachePowerModel(NODE_32NM, cell_kind="1T")


class TestDynamicPower:
    def test_zero_activity_zero_power(self, power_6t):
        assert power_6t.dynamic_power(0.0) == 0.0

    def test_full_activity_matches_full_power(self, power_6t):
        assert power_6t.dynamic_power(3.0) == pytest.approx(
            power_6t.full_dynamic_power
        )

    def test_linear_in_activity(self, power_6t):
        assert power_6t.dynamic_power(1.0) == pytest.approx(
            power_6t.full_dynamic_power / 3
        )

    def test_rejects_over_port_count(self, power_6t):
        with pytest.raises(ConfigurationError):
            power_6t.dynamic_power(3.5)


class TestGlobalRefreshPower:
    def test_decreases_with_retention(self, power_3t1d):
        short = power_3t1d.global_refresh_power(600e-9)
        long = power_3t1d.global_refresh_power(3000e-9)
        assert short > long

    def test_saturates_below_pass_time(self, power_3t1d):
        at_pass = power_3t1d.global_refresh_power(476.3e-9)
        below = power_3t1d.global_refresh_power(100e-9)
        assert below == pytest.approx(at_pass, rel=1e-3)

    def test_includes_control_floor(self, power_3t1d):
        floor = (
            calibration.REFRESH_CONTROL_OVERHEAD
            * power_3t1d.ideal_mean_dynamic_power
        )
        assert power_3t1d.global_refresh_power(1.0) == pytest.approx(
            floor, rel=0.01
        )

    def test_band_matches_figure_6b(self, power_3t1d):
        # Refresh power relative to ideal dynamic power should span the
        # paper's 0.3-1.25X band over the 476-3094 ns retention range.
        ideal = power_3t1d.ideal_mean_dynamic_power
        at_min = power_3t1d.global_refresh_power(476e-9) / ideal
        at_max = power_3t1d.global_refresh_power(3094e-9) / ideal
        assert 0.8 < at_min < 1.6
        assert 0.2 < at_max < 0.6

    def test_rejects_negative_retention(self, power_3t1d):
        with pytest.raises(ConfigurationError):
            power_3t1d.global_refresh_power(-1.0)


class TestEventPower:
    def test_accumulates_components(self, power_3t1d):
        base = power_3t1d.event_dynamic_power(1000, port_accesses=100)
        with_refresh = power_3t1d.event_dynamic_power(
            1000, port_accesses=100, line_refreshes=50
        )
        with_l2 = power_3t1d.event_dynamic_power(
            1000, port_accesses=100, extra_l2_accesses=10
        )
        assert with_refresh > base
        assert with_l2 > base

    def test_l2_access_expensive(self, power_3t1d):
        assert power_3t1d.l2_access_energy > 4 * power_3t1d.port_access_energy

    def test_line_counter_overhead_small(self, power_3t1d):
        assert power_3t1d.line_counter_power() < (
            0.10 * power_3t1d.ideal_mean_dynamic_power
        )

    def test_counters_flag_adds_power(self, power_3t1d):
        without = power_3t1d.event_dynamic_power(1000, port_accesses=100)
        with_counters = power_3t1d.event_dynamic_power(
            1000, port_accesses=100, include_line_counters=True
        )
        assert with_counters == pytest.approx(
            without + power_3t1d.line_counter_power()
        )

    def test_rejects_zero_cycles(self, power_3t1d):
        with pytest.raises(ConfigurationError):
            power_3t1d.event_dynamic_power(0, port_accesses=1)
