"""Retention BIST (section 4.3.1 self-test)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.technology import NODE_32NM
from repro.variation import VariationParams
from repro.array import ChipSampler
from repro.array.bist import RetentionBIST


@pytest.fixture(scope="module")
def chip():
    sampler = ChipSampler(NODE_32NM, VariationParams.severe(), seed=500)
    return sampler.sample_3t1d_chip()


@pytest.fixture(scope="module")
def result(chip):
    return RetentionBIST().test_chip(chip)


class TestConservatism:
    def test_measured_never_exceeds_true_retention(self, chip, result):
        true_cycles = chip.retention_by_line * NODE_32NM.frequency
        assert np.all(result.measured_retention_cycles <= true_cycles)

    def test_counters_never_exceed_measurement(self, result):
        assert np.all(result.counter_values <= result.measured_retention_cycles)

    def test_guard_band_derates(self, chip):
        lax = RetentionBIST(guard_band=1.0).test_chip(chip)
        tight = RetentionBIST(guard_band=0.8).test_chip(chip)
        assert np.all(
            tight.measured_retention_cycles <= lax.measured_retention_cycles
        )

    def test_counter_multiples(self, result):
        assert np.all(
            result.counter_values % result.counter.step_cycles == 0
        )


class TestDeadLines:
    def test_dead_fraction_at_least_physical(self, chip, result):
        # Guard band + quantisation can only add dead lines.
        assert result.dead_line_fraction >= chip.dead_line_fraction()

    def test_zero_retention_lines_measured_dead(self, chip, result):
        physical_dead = chip.retention_by_line <= 0
        assert np.all(result.dead_lines[physical_dead])


class TestTesterBookkeeping:
    def test_test_time_positive(self, result):
        assert result.test_cycles > 0

    def test_test_time_scales_with_retention(self, chip):
        # Probing longer-lived lines takes longer tester time.
        quick = RetentionBIST(probe_step_cycles=5000).test_chip(chip)
        assert quick.test_cycles > 0

    def test_finer_probe_not_less_accurate(self, chip):
        coarse = RetentionBIST(probe_step_cycles=4000).test_chip(chip)
        fine = RetentionBIST(probe_step_cycles=500).test_chip(chip)
        assert np.all(
            fine.measured_retention_cycles >= coarse.measured_retention_cycles
        )


class TestValidation:
    def test_rejects_bad_guard_band(self):
        with pytest.raises(ConfigurationError):
            RetentionBIST(guard_band=0.0)
        with pytest.raises(ConfigurationError):
            RetentionBIST(guard_band=1.5)

    def test_rejects_bad_probe_step(self):
        with pytest.raises(ConfigurationError):
            RetentionBIST(probe_step_cycles=0)
