"""Sub-array timing and refresh timing."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.technology import NODE_32NM, NODE_65NM, calibration
from repro.array import RefreshTiming, SubArrayTiming


@pytest.fixture
def timing():
    return SubArrayTiming(NODE_32NM)


@pytest.fixture
def refresh():
    return RefreshTiming(NODE_32NM)


class TestSubArrayTiming:
    def test_nominal_access_matches_anchor(self, timing):
        assert timing.nominal_access_time == pytest.approx(208e-12)

    def test_nominal_factors_reproduce_anchor(self, timing):
        assert timing.access_times(1.0) == pytest.approx(208e-12, rel=1e-9)

    def test_weak_cell_slower(self, timing):
        assert timing.access_times(0.8) > timing.access_times(1.0)

    def test_dead_cell_inf(self, timing):
        assert np.isinf(timing.access_times(0.0))

    def test_worst_access_picks_max(self, timing):
        factors = np.array([1.0, 0.9, 1.1])
        worst = timing.worst_access_time(factors)
        assert worst == pytest.approx(float(timing.access_times(0.9)))

    def test_rejects_negative_factors(self, timing):
        with pytest.raises(ConfigurationError):
            timing.access_times(np.array([-0.1]))

    def test_bitline_wire_delay_within_budget(self, timing):
        # The physical RC of the bitline must fit inside the calibrated
        # bitline share of the access time.
        budget = calibration.BITLINE_FRACTION * timing.nominal_access_time
        assert timing.bitline_wire_delay < budget

    def test_geometry_lengths(self, timing):
        assert timing.bitline_length > 0
        assert timing.wordline_length > 0


class TestRefreshTiming:
    def test_cycle_counts(self, refresh):
        assert refresh.cycles_per_line == 8
        assert refresh.cycles_full_pass == 2048

    def test_full_pass_seconds_matches_paper(self, refresh):
        # Paper: 2K cycles at 4.3 GHz = 476.3 ns.
        assert refresh.full_pass_seconds == pytest.approx(476.3e-9, rel=1e-3)

    def test_65nm_pass_slower(self):
        assert (
            RefreshTiming(NODE_65NM).full_pass_seconds
            > RefreshTiming(NODE_32NM).full_pass_seconds
        )

    def test_bandwidth_fraction_paper_example(self, refresh):
        # Paper: 476.3ns / 6000ns retention ~ 8% of bandwidth.
        assert refresh.bandwidth_fraction(6000e-9) == pytest.approx(
            0.0794, rel=0.01
        )

    def test_bandwidth_saturates(self, refresh):
        assert refresh.bandwidth_fraction(100e-9) == 1.0

    def test_zero_retention_saturates(self, refresh):
        assert refresh.bandwidth_fraction(0.0) == 1.0
