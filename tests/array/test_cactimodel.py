"""The CACTI-anchored geometry scaling model (DESIGN 3h)."""

import pytest

from repro.array import CacheGeometry
from repro.array.cactimodel import (
    CACTI_ANCHORS,
    access_time_factor,
    bank_leakage_overhead_factor,
    derived_access_latency_cycles,
    is_paper_organisation,
    leakage_factor,
    read_energy_factor,
    reference_metrics,
    scale_chip_leakage,
)

ANCHOR_TOLERANCE = 0.15
"""The acceptance bar: every SNIPPETS.md CACTI anchor value must
reproduce within 15% on access time, read energy, and leakage."""


class TestCactiAnchors:
    @pytest.mark.parametrize(
        "anchor", CACTI_ANCHORS, ids=[a.label for a in CACTI_ANCHORS]
    )
    def test_access_time_within_tolerance(self, anchor):
        modelled = reference_metrics(anchor.geometry).access_time
        assert modelled == pytest.approx(
            anchor.access_time, rel=ANCHOR_TOLERANCE
        )

    @pytest.mark.parametrize(
        "anchor", CACTI_ANCHORS, ids=[a.label for a in CACTI_ANCHORS]
    )
    def test_read_energy_within_tolerance(self, anchor):
        modelled = reference_metrics(anchor.geometry).read_energy
        assert modelled == pytest.approx(
            anchor.read_energy, rel=ANCHOR_TOLERANCE
        )

    @pytest.mark.parametrize(
        "anchor", CACTI_ANCHORS, ids=[a.label for a in CACTI_ANCHORS]
    )
    def test_leakage_within_tolerance(self, anchor):
        modelled = reference_metrics(anchor.geometry).leakage_power
        assert modelled == pytest.approx(
            anchor.leakage_power, rel=ANCHOR_TOLERANCE
        )

    def test_covers_16_64_256_kb(self):
        sizes = {a.geometry.size_bytes for a in CACTI_ANCHORS}
        assert {16 * 1024, 64 * 1024, 256 * 1024} <= sizes


class TestPaperPointIdentity:
    """All scaling must vanish exactly at the paper's organisation."""

    def test_paper_factors_are_exactly_one(self):
        paper = CacheGeometry()
        assert access_time_factor(paper) == 1.0
        assert read_energy_factor(paper) == 1.0
        assert leakage_factor(paper) == 1.0
        assert bank_leakage_overhead_factor(paper) == 1.0
        assert is_paper_organisation(paper)

    @pytest.mark.parametrize("ways", [1, 2, 4, 8])
    def test_associativity_variants_share_the_paper_key(self, ways):
        # Figure 11 re-indexes the same physical array; its timing and
        # power must not move.
        variant = CacheGeometry().with_ways(ways)
        assert access_time_factor(variant) == 1.0
        assert read_energy_factor(variant) == 1.0
        assert leakage_factor(variant) == 1.0

    def test_scale_chip_leakage_is_identity_at_paper_point(self):
        assert scale_chip_leakage(0.123456789, CacheGeometry()) == 0.123456789

    def test_paper_latency_derives_to_three_cycles(self):
        assert derived_access_latency_cycles(CacheGeometry()) == 3
        assert CacheGeometry.from_capacity(
            64 * 1024, 4
        ).access_latency_cycles == 3


class TestScalingShape:
    def test_bigger_caches_are_slower_and_leakier(self):
        small = CacheGeometry.from_capacity(16 * 1024, 4, banks=2)
        large = CacheGeometry.from_capacity(256 * 1024, 4, banks=2)
        assert access_time_factor(large) > access_time_factor(small)
        assert leakage_factor(large) > leakage_factor(small)
        assert read_energy_factor(large) > read_energy_factor(small)

    def test_banking_trades_leakage_for_speed(self):
        lazy = CacheGeometry.from_capacity(256 * 1024, 4, banks=2)
        eager = CacheGeometry.from_capacity(256 * 1024, 4, banks=16)
        assert access_time_factor(eager) < access_time_factor(lazy)
        assert bank_leakage_overhead_factor(eager) > (
            bank_leakage_overhead_factor(lazy)
        )

    def test_more_ports_cost_time_and_energy(self):
        one_port = CacheGeometry.from_capacity(
            64 * 1024, 4, read_ports=1, write_ports=0
        )
        many_ports = CacheGeometry.from_capacity(
            64 * 1024, 4, read_ports=8, write_ports=0
        )
        assert access_time_factor(many_ports) > access_time_factor(one_port)
        assert read_energy_factor(many_ports) > read_energy_factor(one_port)

    def test_derived_latencies_stay_below_l2(self):
        # The sweep grid must produce valid CacheConfigs (hit latency
        # strictly below the 12-cycle L2 default).
        for size_kb in (16, 32, 64, 128, 256):
            for banks in (2, 4, 8):
                derived = CacheGeometry.from_capacity(
                    size_kb * 1024, 4, banks=banks
                )
                assert 2 < derived.access_latency_cycles < 12
