"""Cache array geometry (section 3.2 organisation)."""

import pytest

from repro.errors import ConfigurationError
from repro.array import CacheGeometry


@pytest.fixture
def geometry():
    return CacheGeometry()


class TestPaperOrganisation:
    def test_64kb_4way_512bit(self, geometry):
        assert geometry.size_bytes == 64 * 1024
        assert geometry.ways == 4
        assert geometry.line_bits == 512

    def test_counts(self, geometry):
        assert geometry.n_lines == 1024
        assert geometry.n_sets == 256
        assert geometry.n_pairs == 4
        assert geometry.rows_per_pair == 256

    def test_ports(self, geometry):
        assert geometry.read_ports == 2
        assert geometry.write_ports == 1

    def test_subarray_bits_consistent(self, geometry):
        assert (
            geometry.n_subarrays
            * geometry.subarray_rows
            * geometry.subarray_cols
            == geometry.total_data_bits
        )

    def test_refresh_timing_counts(self, geometry):
        # Paper section 4.1: 8 cycles per line, 2K cycles per pass.
        assert geometry.refresh_cycles_per_line == 8
        assert geometry.refresh_cycles_full_pass == 2048

    def test_cells_per_line_includes_tag(self, geometry):
        assert geometry.cells_per_line == 512 + geometry.tag_bits_per_line

    def test_address_bit_counts(self, geometry):
        assert geometry.line_offset_bits == 6  # 64-byte lines
        assert geometry.set_index_bits == 8  # 256 sets


class TestPlacement:
    def test_line_id_layout(self, geometry):
        assert geometry.line_id(0, 0) == 0
        assert geometry.line_id(0, 3) == 3
        assert geometry.line_id(1, 0) == 4
        assert geometry.line_id(255, 3) == 1023

    def test_ways_of_a_set_span_pairs(self, geometry):
        pairs = {
            geometry.pair_of_line(geometry.line_id(10, way))
            for way in range(4)
        }
        assert pairs == {0, 1, 2, 3}

    def test_subarrays_of_pair(self, geometry):
        assert geometry.subarrays_of_pair(0) == (0, 1)
        assert geometry.subarrays_of_pair(3) == (6, 7)

    def test_index_validation(self, geometry):
        with pytest.raises(ConfigurationError):
            geometry.line_id(256, 0)
        with pytest.raises(ConfigurationError):
            geometry.line_id(0, 4)
        with pytest.raises(ConfigurationError):
            geometry.pair_of_line(9999)
        with pytest.raises(ConfigurationError):
            geometry.subarrays_of_pair(4)


class TestAssociativityVariants:
    @pytest.mark.parametrize("ways", [1, 2, 4, 8])
    def test_with_ways_preserves_capacity(self, geometry, ways):
        variant = geometry.with_ways(ways)
        assert variant.n_lines == geometry.n_lines
        assert variant.n_sets * variant.ways == geometry.n_lines
        assert variant.refresh_cycles_full_pass == 2048

    def test_direct_mapped_sets(self, geometry):
        assert geometry.with_ways(1).n_sets == 1024

    def test_rejects_nondividing_ways(self, geometry):
        with pytest.raises(ConfigurationError):
            geometry.with_ways(3)


class TestValidation:
    def test_rejects_odd_subarray_count(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(n_subarrays=7)

    def test_rejects_inconsistent_subarray_bits(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(subarray_rows=100)

    def test_rejects_bad_sense_amp_split(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(sense_amps_per_pair=100)

    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(ways=0)
