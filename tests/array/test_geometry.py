"""Cache array geometry (section 3.2 organisation + derived sweep API)."""

import pytest

from repro.errors import ConfigurationError
from repro.array import CacheGeometry, derived_tag_bits


@pytest.fixture
def geometry():
    return CacheGeometry()


class TestPaperOrganisation:
    def test_64kb_4way_512bit(self, geometry):
        assert geometry.size_bytes == 64 * 1024
        assert geometry.ways == 4
        assert geometry.line_bits == 512

    def test_counts(self, geometry):
        assert geometry.n_lines == 1024
        assert geometry.n_sets == 256
        assert geometry.n_pairs == 4
        assert geometry.rows_per_pair == 256

    def test_ports(self, geometry):
        assert geometry.read_ports == 2
        assert geometry.write_ports == 1

    def test_subarray_bits_consistent(self, geometry):
        assert (
            geometry.n_subarrays
            * geometry.subarray_rows
            * geometry.subarray_cols
            == geometry.total_data_bits
        )

    def test_refresh_timing_counts(self, geometry):
        # Paper section 4.1: 8 cycles per line, 2K cycles per pass.
        assert geometry.refresh_cycles_per_line == 8
        assert geometry.refresh_cycles_full_pass == 2048

    def test_cells_per_line_includes_tag(self, geometry):
        assert geometry.cells_per_line == 512 + geometry.tag_bits_per_line

    def test_address_bit_counts(self, geometry):
        assert geometry.line_offset_bits == 6  # 64-byte lines
        assert geometry.set_index_bits == 8  # 256 sets


class TestPlacement:
    def test_line_id_layout(self, geometry):
        assert geometry.line_id(0, 0) == 0
        assert geometry.line_id(0, 3) == 3
        assert geometry.line_id(1, 0) == 4
        assert geometry.line_id(255, 3) == 1023

    def test_ways_of_a_set_span_pairs(self, geometry):
        pairs = {
            geometry.pair_of_line(geometry.line_id(10, way))
            for way in range(4)
        }
        assert pairs == {0, 1, 2, 3}

    def test_subarrays_of_pair(self, geometry):
        assert geometry.subarrays_of_pair(0) == (0, 1)
        assert geometry.subarrays_of_pair(3) == (6, 7)

    def test_index_validation(self, geometry):
        with pytest.raises(ConfigurationError):
            geometry.line_id(256, 0)
        with pytest.raises(ConfigurationError):
            geometry.line_id(0, 4)
        with pytest.raises(ConfigurationError):
            geometry.pair_of_line(9999)
        with pytest.raises(ConfigurationError):
            geometry.subarrays_of_pair(4)


class TestAssociativityVariants:
    @pytest.mark.parametrize("ways", [1, 2, 4, 8])
    def test_with_ways_preserves_capacity(self, geometry, ways):
        variant = geometry.with_ways(ways)
        assert variant.n_lines == geometry.n_lines
        assert variant.n_sets * variant.ways == geometry.n_lines
        assert variant.refresh_cycles_full_pass == 2048

    def test_direct_mapped_sets(self, geometry):
        assert geometry.with_ways(1).n_sets == 1024

    def test_rejects_nondividing_ways(self, geometry):
        with pytest.raises(ConfigurationError):
            geometry.with_ways(3)


SWEEP_SIZES_KB = (16, 32, 64, 128, 256)
SWEEP_WAYS = (1, 2, 4, 8)
SWEEP_BANKS = (2, 4, 8)


class TestFromCapacity:
    def test_paper_point_is_the_default_geometry(self):
        # The byte-identity foundation: deriving the paper's knobs
        # reproduces the hand-written Section 3.2 organisation exactly.
        assert CacheGeometry.from_capacity(64 * 1024, 4) == CacheGeometry()

    def test_default_banking_keeps_256_rows(self):
        derived = CacheGeometry.from_capacity(256 * 1024, 8)
        assert derived.subarray_rows == 256
        assert derived.banks == 16

    @pytest.mark.parametrize("size_kb", SWEEP_SIZES_KB)
    @pytest.mark.parametrize("ways", SWEEP_WAYS)
    def test_round_trips_across_the_sweep_grid(self, size_kb, ways):
        derived = CacheGeometry.from_capacity(size_kb * 1024, ways)
        assert derived.size_bytes == size_kb * 1024
        assert derived.ways == ways
        assert derived.n_lines == size_kb * 1024 * 8 // 512
        assert derived.n_lines % derived.n_pairs == 0
        assert derived.line_bits % derived.sense_amps_per_pair == 0
        assert derived.tag_bits_per_line == derived_tag_bits(
            size_kb * 1024, 512, ways
        )

    @pytest.mark.parametrize("size_kb", SWEEP_SIZES_KB)
    @pytest.mark.parametrize("banks", SWEEP_BANKS)
    @pytest.mark.parametrize("ways", SWEEP_WAYS)
    def test_sweep_grid_satisfies_invariants(self, size_kb, banks, ways):
        # Every geometry the geomsweep grid emits must construct (the
        # classmethod cannot assemble objects that trip __post_init__).
        base = CacheGeometry.from_capacity(size_kb * 1024, 4, banks=banks)
        variant = base.with_ways(ways)
        assert variant.banks == banks
        assert variant.n_subarrays == 2 * banks
        assert (
            variant.n_subarrays
            * variant.subarray_rows
            * variant.subarray_cols
            == variant.total_data_bits
        )

    def test_rejects_partial_lines(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry.from_capacity(1000, 1)

    def test_rejects_inconsistent_banks_and_subarrays(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry.from_capacity(64 * 1024, 4, banks=4, n_subarrays=4)

    def test_paper_tag_width_derived(self):
        assert derived_tag_bits(64 * 1024, 512, 4) == 34


class TestReplace:
    def test_rederives_dependent_fields(self):
        grown = CacheGeometry().replace(size_bytes=128 * 1024)
        assert grown.size_bytes == 128 * 1024
        assert grown.banks == 4  # banking preserved, not re-defaulted
        assert grown.subarray_rows == 512

    def test_banks_knob_refloorplans(self):
        rebanked = CacheGeometry().replace(banks=8)
        assert rebanked.n_subarrays == 16
        assert rebanked.subarray_rows == 128

    def test_rejects_unknown_knobs(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry().replace(bogus_knob=3)

    def test_with_ways_pins_the_physical_layout(self):
        base = CacheGeometry.from_capacity(128 * 1024, 4, banks=8)
        variant = base.with_ways(8)
        for field in (
            "n_subarrays", "subarray_rows", "subarray_cols",
            "sense_amps_per_pair", "tag_bits_per_line",
            "access_latency_cycles",
        ):
            assert getattr(variant, field) == getattr(base, field)


class TestDieGrid:
    def test_paper_grid_matches_historical_sampler(self):
        assert CacheGeometry().die_grid == (2, 4)
        assert CacheGeometry().ndwl == 4
        assert CacheGeometry().ndbl == 2

    @pytest.mark.parametrize("banks", SWEEP_BANKS)
    def test_grid_covers_all_subarrays(self, banks):
        geometry = CacheGeometry.from_capacity(64 * 1024, 4, banks=banks)
        rows, cols = geometry.die_grid
        assert rows * cols == geometry.n_subarrays
        assert rows <= cols


class TestSignature:
    def test_unique_per_geometry(self):
        a = CacheGeometry()
        b = CacheGeometry.from_capacity(64 * 1024, 4, banks=8)
        assert a.signature != b.signature
        assert a.signature == CacheGeometry.from_capacity(
            64 * 1024, 4
        ).signature


class TestValidation:
    def test_rejects_odd_subarray_count(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(n_subarrays=7)

    def test_rejects_inconsistent_subarray_bits(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(subarray_rows=100)

    def test_rejects_bad_sense_amp_split(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(sense_amps_per_pair=100)

    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(ways=0)
