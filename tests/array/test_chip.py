"""Chip-level Monte-Carlo sampling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.technology import NODE_32NM
from repro.variation import VariationParams
from repro.array import CacheGeometry, ChipSampler


@pytest.fixture(scope="module")
def typical_sampler():
    return ChipSampler(NODE_32NM, VariationParams.typical(), seed=100)


@pytest.fixture(scope="module")
def sram_chip():
    sampler = ChipSampler(NODE_32NM, VariationParams.typical(), seed=101)
    return sampler.sample_sram_chip()


@pytest.fixture(scope="module")
def dram_chip():
    sampler = ChipSampler(NODE_32NM, VariationParams.typical(), seed=102)
    return sampler.sample_3t1d_chip()


class TestSRAMChipSample:
    def test_worst_access_slower_than_nominal(self, sram_chip):
        assert sram_chip.worst_access_time > sram_chip.nominal_access_time

    def test_normalized_frequency_below_one(self, sram_chip):
        assert 0.5 < sram_chip.normalized_frequency < 1.0

    def test_frequency_scales_node(self, sram_chip):
        assert sram_chip.frequency == pytest.approx(
            sram_chip.normalized_frequency * NODE_32NM.frequency
        )

    def test_leakage_positive(self, sram_chip):
        assert sram_chip.leakage_power > 0
        assert sram_chip.normalized_leakage > 0

    def test_has_some_unstable_cells_at_typical(self, sram_chip):
        # 0.4% of ~560k cells: thousands of flips expected.
        assert sram_chip.flip_count > 1000
        assert sram_chip.flip_rate == pytest.approx(0.004, rel=0.3)

    def test_golden_chip_is_ideal(self):
        golden = ChipSampler.golden_sram_chip(NODE_32NM)
        assert golden.normalized_frequency == pytest.approx(1.0)
        assert golden.normalized_leakage == pytest.approx(1.0)
        assert golden.flip_count == 0

    def test_2x_chips_faster_than_1x(self):
        sampler_a = ChipSampler(NODE_32NM, VariationParams.typical(), seed=7)
        sampler_b = ChipSampler(NODE_32NM, VariationParams.typical(), seed=7)
        freq_1x = np.median(
            [c.normalized_frequency for c in sampler_a.sample_sram_chips(10, 1.0)]
        )
        freq_2x = np.median(
            [c.normalized_frequency for c in sampler_b.sample_sram_chips(10, 2.0)]
        )
        assert freq_2x > freq_1x


class TestDRAMChipSample:
    def test_retention_shape(self, dram_chip):
        assert dram_chip.retention_by_line.shape == (1024,)
        assert dram_chip.retention_grid.shape == (256, 4)

    def test_grid_matches_flat_layout(self, dram_chip):
        flat = dram_chip.retention_by_line
        grid = dram_chip.retention_grid
        assert grid[10, 2] == flat[10 * 4 + 2]

    def test_chip_retention_is_worst_line(self, dram_chip):
        assert dram_chip.chip_retention_time == pytest.approx(
            float(np.min(dram_chip.retention_by_line))
        )

    def test_retention_spread_below_nominal(self, dram_chip):
        # Every line's retention is at most the nominal cell retention.
        assert float(np.max(dram_chip.retention_by_line)) < 5.8e-6
        assert dram_chip.mean_line_retention < 5.8e-6

    def test_typical_chip_has_no_dead_lines(self, dram_chip):
        assert dram_chip.dead_line_fraction() == pytest.approx(0.0, abs=0.01)

    def test_dead_lines_threshold_monotone(self, dram_chip):
        low = dram_chip.dead_line_fraction(100e-9)
        high = dram_chip.dead_line_fraction(1000e-9)
        assert high >= low

    def test_threshold_validation(self, dram_chip):
        with pytest.raises(ConfigurationError):
            dram_chip.dead_lines(-1.0)

    def test_reinterpret_associativity(self, dram_chip):
        eight_way = dram_chip.with_geometry(CacheGeometry(ways=8))
        assert eight_way.retention_grid.shape == (128, 8)
        assert np.array_equal(
            eight_way.retention_by_line, dram_chip.retention_by_line
        )

    def test_golden_chip_uniform(self):
        golden = ChipSampler.golden_3t1d_chip(NODE_32NM)
        assert np.all(golden.retention_by_line == golden.retention_by_line[0])
        assert golden.chip_retention_time == pytest.approx(5.8e-6)

    def test_severe_chips_have_dead_lines(self):
        sampler = ChipSampler(NODE_32NM, VariationParams.severe(), seed=55)
        chips = sampler.sample_3t1d_chips(8)
        dead_500ns = [c.dead_line_fraction(500e-9) for c in chips]
        assert max(dead_500ns) > 0.01

    def test_deterministic_given_seed(self):
        a = ChipSampler(NODE_32NM, VariationParams.typical(), seed=200)
        b = ChipSampler(NODE_32NM, VariationParams.typical(), seed=200)
        assert np.array_equal(
            a.sample_3t1d_chip().retention_by_line,
            b.sample_3t1d_chip().retention_by_line,
        )


class TestSamplerValidation:
    def test_accepts_swept_subarray_counts(self):
        # Non-paper banking used to be rejected; the variation grid now
        # follows the geometry's die placement.
        geometry = CacheGeometry(
            n_subarrays=4, subarray_rows=256, subarray_cols=512
        )
        sampler = ChipSampler(
            NODE_32NM, VariationParams.typical(), geometry=geometry
        )
        chip = sampler.sample_3t1d_chip()
        assert chip.retention_by_line.shape == (geometry.n_lines,)
        assert sampler._sampler.n_subarrays == 4

    def test_correlation_grid_follows_die_grid(self):
        from repro.array.geometry import CacheGeometry as G

        geometry = G.from_capacity(256 * 1024, 8, banks=16)
        sampler = ChipSampler(
            NODE_32NM, VariationParams.severe(), geometry=geometry
        )
        assert sampler._sampler.n_subarrays == geometry.n_subarrays
        rows, cols = geometry.die_grid
        assert (sampler._sampler.subarray_rows,
                sampler._sampler.subarray_cols) == (rows, cols)
        chip = sampler.sample_3t1d_chip()
        assert chip.retention_by_line.shape == (geometry.n_lines,)
